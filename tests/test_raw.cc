/**
 * @file
 * Tests for the Raw machine model: assembler/ISA semantics, the tile
 * interpreter (latencies, stalls, branching), the static network and
 * its blocking $csti/$csto registers, DMA port streams, the cached
 * MIMD mode, the assembled FFT building block, and end-to-end kernel
 * correctness against the references.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/fft.hh"
#include "raw/assembler.hh"
#include "raw/kernels_raw.hh"
#include "raw/machine.hh"
#include "sim/bitutil.hh"
#include "sim/logging.hh"

namespace triarch::raw
{
namespace
{

using kernels::cfloat;

TEST(Assembler, EmitsAndDisassembles)
{
    Assembler as;
    as.li(1, 42);
    as.add(2, 1, 1);
    as.halt();
    auto prog = as.finish();
    ASSERT_EQ(prog.size(), 3u);
    EXPECT_EQ(prog[0].op, Op::Li);
    EXPECT_EQ(disassemble(prog[0]), "li r1, 42");
    EXPECT_EQ(disassemble(prog[1]), "add r2, r1, r1");
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    Assembler as;
    Label fwd = as.label();
    as.jump(fwd);           // instruction 0 -> target 2
    as.li(1, 1);            // skipped
    as.bind(fwd);
    Label back = as.label();
    as.bind(back);
    as.li(2, 2);            // instruction 2
    as.bne(2, 0, back);     // loops once? no: 2 != 0 -> loops forever
    auto prog = as.finish();
    EXPECT_EQ(prog[0].imm, 2);
    EXPECT_EQ(prog[3].imm, 2);
}

TEST(Assembler, UnboundLabelDies)
{
    EXPECT_DEATH(
        {
            Assembler as;
            Label l = as.label();
            as.jump(l);
            as.finish();
        },
        "unbound label");
}

TEST(Assembler, NetworkRegisterNames)
{
    Instr i{Op::Add, static_cast<std::uint8_t>(regCsto),
            static_cast<std::uint8_t>(regCsti),
            static_cast<std::uint8_t>(regCsti), 0};
    EXPECT_EQ(disassemble(i), "add $csto, $csti, $csti");
}

/** Run a single-tile program and return the machine. */
std::unique_ptr<RawMachine>
runOne(std::vector<Instr> prog)
{
    auto m = std::make_unique<RawMachine>();
    m->setProgram(0, std::move(prog));
    m->run();
    return m;
}

TEST(RawTile, ArithmeticSemantics)
{
    Assembler as;
    as.li(1, 100);
    as.li(2, -30);
    as.add(3, 1, 2);        // 70
    as.sub(4, 1, 2);        // 130
    as.mul(5, 1, 2);        // -3000
    as.sll(6, 1, 3);        // 800
    as.sra(7, 2, 1);        // -15
    as.srl(8, 2, 28);       // high bits of -30
    as.and_(9, 1, 2);
    as.or_(10, 1, 2);
    as.xor_(11, 1, 1);      // 0
    as.sw(3, 0, 0);
    as.sw(4, 0, 4);
    as.sw(5, 0, 8);
    as.sw(6, 0, 12);
    as.sw(7, 0, 16);
    as.sw(8, 0, 20);
    as.sw(11, 0, 24);
    as.halt();

    auto m = runOne(as.finish());
    auto w = m->peekLocal(0, 0, 7);
    EXPECT_EQ(static_cast<std::int32_t>(w[0]), 70);
    EXPECT_EQ(static_cast<std::int32_t>(w[1]), 130);
    EXPECT_EQ(static_cast<std::int32_t>(w[2]), -3000);
    EXPECT_EQ(w[3], 800u);
    EXPECT_EQ(static_cast<std::int32_t>(w[4]), -15);
    EXPECT_EQ(w[5], 0xFu);
    EXPECT_EQ(w[6], 0u);
}

TEST(RawTile, FloatingPointSemantics)
{
    Assembler as;
    as.li(1, static_cast<std::int32_t>(floatToWord(1.5f)));
    as.li(2, static_cast<std::int32_t>(floatToWord(-2.25f)));
    as.fadd(3, 1, 2);
    as.fsub(4, 1, 2);
    as.fmul(5, 1, 2);
    as.sw(3, 0, 0);
    as.sw(4, 0, 4);
    as.sw(5, 0, 8);
    as.halt();

    auto m = runOne(as.finish());
    auto w = m->peekLocal(0, 0, 3);
    EXPECT_FLOAT_EQ(wordToFloat(w[0]), -0.75f);
    EXPECT_FLOAT_EQ(wordToFloat(w[1]), 3.75f);
    EXPECT_FLOAT_EQ(wordToFloat(w[2]), -3.375f);
}

TEST(RawTile, RegisterZeroIsHardwired)
{
    Assembler as;
    as.li(0, 123);          // write to r0 is dropped
    as.addi(1, 0, 7);
    as.sw(1, 0, 0);
    as.halt();
    auto m = runOne(as.finish());
    EXPECT_EQ(m->peekLocal(0, 0, 1)[0], 7u);
}

TEST(RawTile, BranchLoopCountsCorrectly)
{
    Assembler as;
    as.li(1, 0);            // sum
    as.li(2, 10);           // counter
    Label loop = as.label();
    as.bind(loop);
    as.add(1, 1, 2);        // sum += counter
    as.addi(2, 2, -1);
    as.bne(2, 0, loop);
    as.sw(1, 0, 0);
    as.halt();
    auto m = runOne(as.finish());
    EXPECT_EQ(m->peekLocal(0, 0, 1)[0], 55u);    // 10+9+...+1
}

TEST(RawTile, BltBgeSignedComparison)
{
    Assembler as;
    as.li(1, -5);
    as.li(2, 3);
    Label less = as.label();
    as.blt(1, 2, less);
    as.li(3, 0);            // skipped
    as.jump(less);          // unreachable but keeps label sane
    as.bind(less);
    as.li(3, 1);
    as.sw(3, 0, 0);
    as.halt();
    auto m = runOne(as.finish());
    EXPECT_EQ(m->peekLocal(0, 0, 1)[0], 1u);
}

TEST(RawTile, DependentLatencyStalls)
{
    // A chain of dependent fmuls costs ~fpLatency each; independent
    // fmuls retire one per cycle.
    Assembler chain;
    chain.li(1, static_cast<std::int32_t>(floatToWord(1.0f)));
    for (int i = 0; i < 20; ++i)
        chain.fmul(1, 1, 1);
    chain.halt();
    RawMachine m1;
    m1.setProgram(0, chain.finish());
    const Cycles chained = m1.run();

    Assembler indep;
    indep.li(1, static_cast<std::int32_t>(floatToWord(1.0f)));
    for (int i = 0; i < 20; ++i)
        indep.fmul(2 + (i % 8), 1, 1);
    indep.halt();
    RawMachine m2;
    m2.setProgram(0, indep.finish());
    const Cycles parallel = m2.run();

    EXPECT_GT(chained, parallel + 20);
}

TEST(RawNetwork, TileToTileLatency)
{
    // Tile 0 sends one word to tile 1 ($csti blocks until arrival).
    RawMachine m;
    m.setRoute(0, 1);

    Assembler sender;
    sender.li(1, 777);
    sender.move(regCsto, 1);
    sender.halt();
    m.setProgram(0, sender.finish());

    Assembler receiver;
    receiver.move(2, regCsti);
    receiver.sw(2, 0, 0);
    receiver.halt();
    m.setProgram(1, receiver.finish());

    m.run();
    EXPECT_EQ(m.peekLocal(1, 0, 1)[0], 777u);
    EXPECT_GT(m.netStalls(), 0u);   // receiver waited for arrival
}

TEST(RawNetwork, OperandsDirectlyFromNetwork)
{
    // add $csto, $csti, $csti — compute straight from the network.
    RawMachine m;
    m.setRoute(0, 1);
    m.setRoute(1, 0);

    Assembler t0;
    t0.li(1, 30);
    t0.move(regCsto, 1);
    t0.li(1, 12);
    t0.move(regCsto, 1);
    t0.move(2, regCsti);        // get the sum back
    t0.sw(2, 0, 0);
    t0.halt();
    m.setProgram(0, t0.finish());

    Assembler t1;
    t1.add(regCsto, regCsti, regCsti);
    t1.halt();
    m.setProgram(1, t1.finish());

    m.run();
    EXPECT_EQ(m.peekLocal(0, 0, 1)[0], 42u);
}

TEST(RawNetwork, FarTilesTakeLongerThanNeighbours)
{
    auto roundTrip = [](unsigned peer) {
        RawMachine m;
        m.setRoute(0, peer);
        m.setRoute(peer, 0);
        Assembler t0;
        t0.li(1, 1);
        t0.move(regCsto, 1);
        t0.move(2, regCsti);
        t0.halt();
        m.setProgram(0, t0.finish());
        Assembler tp;
        tp.move(regCsto, regCsti);
        tp.halt();
        m.setProgram(peer, tp.finish());
        return m.run();
    };
    // Tile 1 is one hop away; tile 15 is six hops away.
    EXPECT_GT(roundTrip(15), roundTrip(1) + 8);
}

TEST(RawDma, StreamInReachesTile)
{
    RawMachine m;
    const Addr buf = m.allocGlobal(64, "in");
    std::vector<Word> data{5, 6, 7, 8};
    m.pokeGlobal(buf, data);
    m.dmaIn(0, 0, buf, 4);

    Assembler as;
    for (int i = 0; i < 4; ++i) {
        as.move(1, regCsti);
        as.sw(1, 0, i * 4);
    }
    as.halt();
    m.setProgram(0, as.finish());
    m.run();
    EXPECT_EQ(m.peekLocal(0, 0, 4), data);
}

TEST(RawDma, StreamOutWritesMemory)
{
    RawMachine m;
    const Addr buf = m.allocGlobal(64, "out");
    m.dmaOut(3, buf, 4);
    m.setRoute(3, portEndpoint(3));

    Assembler as;
    for (int i = 0; i < 4; ++i)
        as.li(regCsto, 100 + i);
    as.halt();
    m.setProgram(3, as.finish());
    m.run();
    auto w = m.peekGlobal(buf, 4);
    EXPECT_EQ(w, (std::vector<Word>{100, 101, 102, 103}));
}

TEST(RawDma, RoundTripThroughTile)
{
    // DMA in -> tile doubles each word -> DMA out.
    RawMachine m;
    const Addr in = m.allocGlobal(256, "in");
    const Addr out = m.allocGlobal(256, "out");
    std::vector<Word> data(64);
    for (unsigned i = 0; i < 64; ++i)
        data[i] = i;
    m.pokeGlobal(in, data);
    m.dmaIn(5, 5, in, 64);
    m.dmaOut(5, out, 64);
    m.setRoute(5, portEndpoint(5));

    Assembler as;
    as.li(2, 64);
    Label loop = as.label();
    as.bind(loop);
    as.move(1, regCsti);
    as.add(regCsto, 1, 1);
    as.addi(2, 2, -1);
    as.bne(2, 0, loop);
    as.halt();
    m.setProgram(5, as.finish());
    m.run();
    auto w = m.peekGlobal(out, 64);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(w[i], 2 * i);
}

TEST(RawDma, DoubleReadPopsTwoWords)
{
    RawMachine m;
    const Addr in = m.allocGlobal(64, "in");
    m.pokeGlobal(in, std::vector<Word>{10, 32});
    m.dmaIn(0, 0, in, 2);
    Assembler as;
    as.add(1, regCsti, regCsti);
    as.sw(1, 0, 0);
    as.halt();
    m.setProgram(0, as.finish());
    m.run();
    EXPECT_EQ(m.peekLocal(0, 0, 1)[0], 42u);
}

TEST(RawCache, GlobalAccessesAreCached)
{
    RawMachine m;
    const Addr buf = m.allocGlobal(4096, "buf");
    std::vector<Word> data(1024);
    for (unsigned i = 0; i < 1024; ++i)
        data[i] = i * 3;
    m.pokeGlobal(buf, data);

    // Sum 256 sequential words twice; the second pass hits.
    Assembler as;
    as.li(1, static_cast<std::int32_t>(buf));
    as.li(2, 256);
    as.li(3, 0);
    Label loop = as.label();
    as.bind(loop);
    as.lw(4, 1, 0);
    as.add(3, 3, 4);
    as.addi(1, 1, 4);
    as.addi(2, 2, -1);
    as.bne(2, 0, loop);
    as.sw(3, 0, 0);
    as.halt();
    m.setProgram(0, as.finish());
    const Cycles withMisses = m.run();
    EXPECT_GT(m.cacheStallCycles(), 0u);

    Word expect = 0;
    for (unsigned i = 0; i < 256; ++i)
        expect += i * 3;
    EXPECT_EQ(m.peekLocal(0, 0, 1)[0], expect);
    EXPECT_GT(withMisses, 256u * 5);
}

TEST(RawMachineTest, DeadlockIsFatal)
{
    RawConfig cfg;
    cfg.maxCycles = 10000;
    EXPECT_DEATH(
        {
            RawMachine m(cfg);
            Assembler as;
            as.move(1, regCsti);    // nothing will ever arrive
            as.halt();
            m.setProgram(0, as.finish());
            m.run();
        },
        "deadlock");
}

TEST(RawMachineTest, DescribeMentionsMeshAndPorts)
{
    RawMachine m;
    const std::string d = m.describe();
    EXPECT_NE(d.find("4x4 tiles"), std::string::npos);
    EXPECT_NE(d.find("static mesh"), std::string::npos);
    EXPECT_NE(d.find("DRAM ports"), std::string::npos);
}

// ---------------------------------------------------------------
// The assembled FFT building block.
// ---------------------------------------------------------------

class RawFftTest : public ::testing::Test
{
  protected:
    /** Run emitFft128Local on tile 0 over @p x; returns the result. */
    static std::vector<cfloat>
    runFft(const std::vector<cfloat> &x, bool inverse)
    {
        RawMachine m;
        const auto tw = kernels::twiddleTable(128);
        std::vector<Word> twWords(256), buf(256);
        for (unsigned k = 0; k < 128; ++k) {
            twWords[2 * k] = floatToWord(tw[k].real());
            twWords[2 * k + 1] = floatToWord(
                inverse ? -tw[k].imag() : tw[k].imag());
            buf[2 * k] = floatToWord(x[k].real());
            buf[2 * k + 1] = floatToWord(x[k].imag());
        }
        m.pokeLocal(0, 0, twWords);
        m.pokeLocal(0, 1024, buf);

        Assembler as;
        emitFft128Local(as, 1024, 0, false, inverse);
        as.halt();
        m.setProgram(0, as.finish());
        m.run();

        auto words = m.peekLocal(0, 1024, 256);
        std::vector<cfloat> out(128);
        for (unsigned k = 0; k < 128; ++k) {
            out[k] = cfloat(wordToFloat(words[2 * k]),
                            wordToFloat(words[2 * k + 1]));
        }
        return out;
    }
};

TEST_F(RawFftTest, MatchesReferenceRadix2)
{
    std::vector<cfloat> x(128);
    for (unsigned i = 0; i < 128; ++i)
        x[i] = cfloat(std::sin(0.2f * i), std::cos(0.11f * i));
    auto got = runFft(x, false);
    auto ref = x;
    kernels::fftRadix2(ref);
    for (unsigned k = 0; k < 128; ++k)
        EXPECT_NEAR(std::abs(got[k] - ref[k]), 0.0, 2e-3);
}

TEST_F(RawFftTest, InverseTwiddlesInvert)
{
    std::vector<cfloat> x(128);
    for (unsigned i = 0; i < 128; ++i)
        x[i] = cfloat(0.01f * i, -0.02f * i);
    auto spec = runFft(x, false);
    auto back = runFft(spec, true);     // unscaled inverse
    for (unsigned k = 0; k < 128; ++k)
        EXPECT_NEAR(std::abs(back[k] / 128.0f - x[k]), 0.0, 1e-3);
}

// ---------------------------------------------------------------
// End-to-end kernels vs reference.
// ---------------------------------------------------------------

TEST(RawKernels, CornerTurnSmallMatchesReference)
{
    RawMachine m;
    kernels::WordMatrix src(128, 128);
    kernels::fillMatrix(src, 5);
    kernels::WordMatrix dst;
    const Cycles cycles = cornerTurnRaw(m, src, dst);
    EXPECT_TRUE(kernels::isTransposeOf(src, dst));
    EXPECT_GT(cycles, 0u);
}

TEST(RawKernels, CornerTurnKeepsTilesIssuing)
{
    RawMachine m;
    kernels::WordMatrix src(1024, 1024);
    kernels::fillMatrix(src, 6);
    kernels::WordMatrix dst;
    const Cycles cycles = cornerTurnRaw(m, src, dst);
    ASSERT_TRUE(kernels::isTransposeOf(src, dst));
    // Section 4.2: issue-rate limited, about 2 load/store per word
    // plus loop overhead; memory ports are not the bottleneck.
    const double instrPerCycle =
        static_cast<double>(m.instructions()) / cycles / 16.0;
    EXPECT_GT(instrPerCycle, 0.8);
}

TEST(RawKernels, BeamSteeringMatchesReference)
{
    RawMachine m;
    kernels::BeamConfig cfg;
    cfg.elements = 200;
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, 3);
    auto ref = kernels::beamSteerReference(cfg, tables);

    std::vector<std::int32_t> out;
    const Cycles cycles = beamSteeringRaw(m, cfg, tables, out);
    EXPECT_EQ(out, ref);
    EXPECT_GT(cycles, 0u);
}

TEST(RawKernels, BeamSteeringHasNoLoadsOrStores)
{
    RawMachine m;
    kernels::BeamConfig cfg;
    cfg.elements = 160;
    cfg.dwells = 1;
    auto tables = kernels::makeBeamTables(cfg, 4);
    std::vector<std::int32_t> out;
    beamSteeringRaw(m, cfg, tables, out);
    // Stream mode: only the per-config constant loads touch memory
    // (4 lw per tile per config); the per-output path has none.
    EXPECT_LE(m.loadStores(), 16u * cfg.dwells * cfg.directions * 4);
}

TEST(RawKernels, CslcMatchesReference)
{
    RawMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 5;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {100, 351}, 17);
    auto weights = kernels::estimateWeights(cfg, in);
    auto ref = kernels::cslcReference(cfg, in, weights,
                                      kernels::FftAlgo::Radix2);

    kernels::CslcOutput out;
    auto result = cslcRaw(m, cfg, in, weights, out);
    EXPECT_GT(result.cycles, 0u);

    double maxErr = 0.0;
    for (unsigned mc = 0; mc < cfg.mainChannels; ++mc) {
        for (std::size_t i = 0; i < ref.main[mc].size(); ++i) {
            maxErr = std::max<double>(
                maxErr, std::abs(ref.main[mc][i] - out.main[mc][i]));
        }
    }
    EXPECT_LT(maxErr, 2e-2);
}

TEST(RawKernels, CslcCancelsJammer)
{
    RawMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 8;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {222}, 31);
    auto weights = kernels::estimateWeights(cfg, in);
    kernels::CslcOutput out;
    cslcRaw(m, cfg, in, weights, out);
    EXPECT_GT(kernels::cancellationDepthDb(cfg, in, out), 15.0);
}

TEST(RawKernels, CslcLoadImbalanceVisible)
{
    // 5 sub-bands on 16 tiles: 5 tiles work, 11 idle -> big
    // imbalance; the balanced extrapolation is much smaller.
    RawMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 5;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {100}, 3);
    auto weights = kernels::estimateWeights(cfg, in);
    kernels::CslcOutput out;
    auto result = cslcRaw(m, cfg, in, weights, out);
    EXPECT_LT(result.balancedCycles, result.cycles / 2);
    EXPECT_GT(result.idleFraction, 0.4);
}

TEST(RawKernels, CslcCacheStallsUnderTenPercent)
{
    RawMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 16;      // perfectly balanced: 1 set per tile
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {55}, 8);
    auto weights = kernels::estimateWeights(cfg, in);
    kernels::CslcOutput out;
    auto result = cslcRaw(m, cfg, in, weights, out);
    // Section 4.3: "less than 10% of the execution time is spent on
    // memory stalls".
    const double stallFrac =
        static_cast<double>(m.cacheStallCycles())
        / (16.0 * result.cycles);
    EXPECT_LT(stallFrac, 0.10);
}

} // namespace
} // namespace triarch::raw

// Re-opened for the completed Section 4.3 stream-mode mapping.
namespace triarch::raw
{
namespace
{

TEST(RawKernels, StreamedCslcMatchesReference)
{
    RawMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 5;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {100, 351}, 17);
    auto weights = kernels::estimateWeights(cfg, in);
    auto ref = kernels::cslcReference(cfg, in, weights,
                                      kernels::FftAlgo::Radix2);

    kernels::CslcOutput out;
    auto result = cslcRawStreamed(m, cfg, in, weights, out);
    EXPECT_GT(result.cycles, 0u);

    double maxErr = 0.0;
    for (unsigned mc = 0; mc < cfg.mainChannels; ++mc) {
        for (std::size_t i = 0; i < ref.main[mc].size(); ++i) {
            maxErr = std::max<double>(
                maxErr, std::abs(ref.main[mc][i] - out.main[mc][i]));
        }
    }
    EXPECT_LT(maxErr, 2e-2);
}

TEST(RawKernels, StreamedCslcEliminatesCacheTraffic)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 16;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {222}, 31);
    auto weights = kernels::estimateWeights(cfg, in);

    RawMachine cached, streamed;
    kernels::CslcOutput out;
    auto cachedResult = cslcRaw(cached, cfg, in, weights, out);
    auto streamedResult = cslcRawStreamed(streamed, cfg, in, weights,
                                          out);

    // Section 4.3: the stream interface hides cache-miss stalls.
    EXPECT_GT(cached.cacheStallCycles(), 0u);
    EXPECT_EQ(streamed.cacheStallCycles(), 0u);
    EXPECT_LT(streamedResult.cycles, cachedResult.cycles);
}

} // namespace
} // namespace triarch::raw

// Re-opened for the dynamic (packet) network of Section 2.3.
namespace triarch::raw
{
namespace
{

TEST(RawDynamicNetwork, SendReceiveBetweenArbitraryTiles)
{
    RawMachine m;

    Assembler sender;
    sender.li(1, 14);           // destination tile id
    sender.li(2, 4242);
    sender.dsend(1, 2);
    sender.halt();
    m.setProgram(3, sender.finish());

    Assembler receiver;
    receiver.drecv(5);
    receiver.sw(5, 0, 0);
    receiver.halt();
    m.setProgram(14, receiver.finish());

    m.run();
    EXPECT_EQ(m.peekLocal(14, 0, 1)[0], 4242u);
}

TEST(RawDynamicNetwork, ManyToOneGather)
{
    // Every tile dsends its id to tile 0, which sums 15 packets.
    RawMachine m;
    for (unsigned t = 1; t < 16; ++t) {
        Assembler as;
        as.li(1, 0);
        as.li(2, static_cast<std::int32_t>(t));
        as.dsend(1, 2);
        as.halt();
        m.setProgram(t, as.finish());
    }
    Assembler hub;
    hub.li(1, 0);               // sum
    hub.li(2, 15);              // packets expected
    Label loop = hub.label();
    hub.bind(loop);
    hub.drecv(3);
    hub.add(1, 1, 3);
    hub.addi(2, 2, -1);
    hub.bne(2, 0, loop);
    hub.sw(1, 0, 0);
    hub.halt();
    m.setProgram(0, hub.finish());

    m.run();
    EXPECT_EQ(m.peekLocal(0, 0, 1)[0], 120u);   // 1+2+...+15
}

TEST(RawDynamicNetwork, HigherLatencyThanStaticNetwork)
{
    // Single-word delivery latency: the dynamic network pays packet
    // assembly and routing (Section 2.3: messages carry a header).
    auto oneWord = [](bool dynamic) {
        RawMachine m;
        if (!dynamic)
            m.setRoute(0, 1);
        Assembler src;
        if (dynamic) {
            src.li(1, 1);
            src.li(2, 7);
            src.dsend(1, 2);
        } else {
            src.li(regCsto, 7);
        }
        src.halt();
        m.setProgram(0, src.finish());

        Assembler dst;
        if (dynamic)
            dst.drecv(1);
        else
            dst.move(1, regCsti);
        dst.sw(1, 0, 0);
        dst.halt();
        m.setProgram(1, dst.finish());
        const Cycles cycles = m.run();
        EXPECT_EQ(m.peekLocal(1, 0, 1)[0], 7u);
        return cycles;
    };
    RawConfig cfg;
    EXPECT_GE(oneWord(true),
              oneWord(false) + cfg.dynBaseLatency
                  - cfg.netBaseLatency);
}

TEST(RawDynamicNetwork, DsendToBadTileDies)
{
    EXPECT_DEATH(
        {
            RawMachine m;
            Assembler as;
            as.li(1, 99);
            as.dsend(1, 1);
            as.halt();
            m.setProgram(0, as.finish());
            m.run();
        },
        "dsend to bad tile");
}

TEST(RawDynamicNetwork, DisassemblesNewOps)
{
    Assembler as;
    as.dsend(1, 2);
    as.drecv(3);
    as.halt();
    auto prog = as.finish();
    EXPECT_EQ(disassemble(prog[0]), "dsend r1 -> r2");
    EXPECT_EQ(disassemble(prog[1]), "drecv r3");
}

} // namespace
} // namespace triarch::raw

// Re-opened for the debug trace facility.
namespace triarch::raw
{
namespace
{

TEST(RawTrace, DebugLevelEmitsDisassembly)
{
    setLogLevel(LogLevel::Debug);
    ::testing::internal::CaptureStderr();
    {
        RawMachine m;
        Assembler as;
        as.li(1, 5);
        as.addi(2, 1, 3);
        as.halt();
        m.setProgram(0, as.finish());
        m.run();
    }
    const std::string log = ::testing::internal::GetCapturedStderr();
    setLogLevel(LogLevel::Inform);
    EXPECT_NE(log.find("li r1, 5"), std::string::npos);
    EXPECT_NE(log.find("addi r2, r1, 3"), std::string::npos);
    EXPECT_NE(log.find("raw tile 0"), std::string::npos);
}

TEST(RawTrace, QuietByDefault)
{
    ::testing::internal::CaptureStderr();
    {
        RawMachine m;
        Assembler as;
        as.li(1, 5);
        as.halt();
        m.setProgram(0, as.finish());
        m.run();
    }
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(log.find("raw tile"), std::string::npos);
}

} // namespace
} // namespace triarch::raw

// Re-opened for the continuous-input load-balance study.
namespace triarch::raw
{
namespace
{

TEST(RawKernels, ContinuousInputAmortizesImbalance)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 5;   // 5 sets on 16 tiles: terrible balance
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {120}, 41);
    auto weights = kernels::estimateWeights(cfg, in);

    kernels::CslcOutput out;
    RawMachine one, many;
    auto single = cslcRaw(one, cfg, in, weights, out, 1);
    auto queued = cslcRaw(many, cfg, in, weights, out, 16);

    // 16 intervals x 5 sets = 80 sets = exactly 5 per tile.
    EXPECT_LT(queued.idleFraction, 0.02);
    EXPECT_GT(single.idleFraction, 0.5);
    // Per-interval cost approaches the balanced bound.
    EXPECT_LE(queued.cycles / 16, single.balancedCycles
                                      + single.balancedCycles / 10);
    // Output still correct after repeated processing.
    EXPECT_GT(kernels::cancellationDepthDb(cfg, in, out), 15.0);
}

} // namespace
} // namespace triarch::raw

// Re-opened for the event-stepper PR's accounting bugfixes.
namespace triarch::raw
{
namespace
{

TEST(RawMachineTest, NeverProgrammedTileReportsZeroIdleAfterHalt)
{
    // Only tile 0 runs: the other fifteen were parked by the
    // constructor and never halted, so they must not report the
    // whole run as idle-after-halt (which poisoned imbalance
    // metrics for sparse mappings).
    RawMachine m;
    Assembler as;
    as.li(1, 1);
    for (int i = 0; i < 50; ++i)
        as.add(1, 1, 1);
    as.halt();
    m.setProgram(0, as.finish());
    const Cycles cycles = m.run();
    ASSERT_GT(cycles, 0u);
    for (unsigned t = 1; t < 16; ++t)
        EXPECT_EQ(m.tileIdleAfterHalt(t), 0u) << "tile " << t;
}

TEST(RawMachineTest, EarlyHaltingTileStillReportsIdle)
{
    // Real imbalance must keep showing: a programmed tile that
    // halts early reports the cycles it sat out.
    RawMachine m;
    Assembler quick;
    quick.li(1, 1);
    quick.halt();
    m.setProgram(0, quick.finish());
    Assembler busy;
    busy.li(1, 0);
    busy.li(2, 200);
    Label loop = busy.label();
    busy.bind(loop);
    busy.add(1, 1, 2);
    busy.addi(2, 2, -1);
    busy.bne(2, 0, loop);
    busy.halt();
    m.setProgram(1, busy.finish());
    m.run();
    EXPECT_GT(m.tileIdleAfterHalt(0), 100u);
    EXPECT_LT(m.tileIdleAfterHalt(1), 4u);
}

TEST(RawMachineTest, AllocGlobalOverflowIsFatal)
{
    // A request that would wrap the 64-bit bounds arithmetic must
    // exhaust, not hand out overlapping memory.
    RawMachine m;
    m.allocGlobal(4096, "first");
    EXPECT_DEATH(m.allocGlobal(~std::uint64_t{0} - 63, "wrap"),
                 "exhausted");
}

TEST(RawMachineTest, AllocGlobalExhaustsAtCapacity)
{
    // Word 0 is reserved, so capacity minus the first slot is an
    // exact fit; a single further byte must exhaust.
    RawConfig cfg;
    RawMachine m(cfg);
    m.allocGlobal(cfg.globalBytes - 64, "everything");
    EXPECT_DEATH(m.allocGlobal(1, "one more"), "exhausted");
}

} // namespace
} // namespace triarch::raw
