/**
 * @file
 * Tests for study::CliOptions, the declarative flag parser shared by
 * the bench harness, triarchd, and triarch_client. test_bench.cc pins
 * the end-to-end bench contract (death tests through a real main);
 * this file exercises the class directly: handler dispatch, the
 * '--flag=value' form, unknown-option and --help return codes, the
 * generated usage text, and the exit(2) paths for malformed values.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "study/cli_options.hh"

namespace
{

using triarch::study::CliOptions;

/** parse() over a brace-list of arguments (argv[0] included). */
std::optional<int>
parseArgs(CliOptions &cli, std::vector<std::string> args)
{
    args.insert(args.begin(), "testprog");
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &a : args)
        argv.push_back(a.data());
    return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliOptions, DispatchesValueNumberAndToggleHandlers)
{
    std::string path;
    std::uint64_t count = 0;
    bool verbose = false;

    CliOptions cli("a test program", "testprog");
    cli.value("--out", "PATH", "output file", [&](const std::string &v) {
        path = v;
        return 0;
    });
    cli.number("--count", "N", "how many", 1000, [&](std::uint64_t n) {
        count = n;
        return 0;
    });
    cli.toggle("--verbose", "say more", [&]() {
        verbose = true;
        return 0;
    });

    const auto rc = parseArgs(
        cli, {"--out", "a/b.json", "--count", "42", "--verbose"});
    EXPECT_FALSE(rc.has_value()) << "successful parse proceeds";
    EXPECT_EQ(path, "a/b.json");
    EXPECT_EQ(count, 42u);
    EXPECT_TRUE(verbose);
}

TEST(CliOptions, AcceptsTheEqualsForm)
{
    std::string path;
    std::uint64_t count = 0;

    CliOptions cli("a test program", "testprog");
    cli.value("--out", "PATH", "output file", [&](const std::string &v) {
        path = v;
        return 0;
    });
    cli.number("--count", "N", "how many", 1000, [&](std::uint64_t n) {
        count = n;
        return 0;
    });

    EXPECT_FALSE(
        parseArgs(cli, {"--out=x=y.json", "--count=7"}).has_value());
    EXPECT_EQ(path, "x=y.json") << "only the first '=' splits";
    EXPECT_EQ(count, 7u);
}

TEST(CliOptions, HandlerErrorsStopParsingWithTheirCode)
{
    int calls = 0;
    CliOptions cli("a test program", "testprog");
    cli.value("--mode", "M", "a mode", [&](const std::string &v) {
        ++calls;
        return v == "good" ? 0 : 2;
    });

    EXPECT_EQ(parseArgs(cli, {"--mode", "bad", "--mode", "good"}),
              std::optional<int>(2));
    EXPECT_EQ(calls, 1) << "parsing stops at the failing handler";
}

TEST(CliOptions, UnknownOptionReturnsTwoAndPrintsUsage)
{
    CliOptions cli("a test program", "testprog");
    testing::internal::CaptureStderr();
    const auto rc = parseArgs(cli, {"--bogus"});
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(rc, std::optional<int>(2));
    EXPECT_NE(err.find("unknown option '--bogus'"), std::string::npos);
    EXPECT_NE(err.find("Options:"), std::string::npos);
}

TEST(CliOptions, HelpPrintsUsageAndReturnsZero)
{
    CliOptions cli("a test program", "testprog");
    cli.toggle("--quick", "go fast", [] { return 0; });

    testing::internal::CaptureStdout();
    const auto rc = parseArgs(cli, {"--help"});
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_EQ(rc, std::optional<int>(0));
    EXPECT_NE(out.find("testprog — a test program"), std::string::npos);
    EXPECT_NE(out.find("--quick"), std::string::npos);

    testing::internal::CaptureStdout();
    EXPECT_EQ(parseArgs(cli, {"-h"}), std::optional<int>(0));
    testing::internal::GetCapturedStdout();
}

TEST(CliOptions, UsageListsEveryFlagPlusHelpAndTheEqualsNote)
{
    CliOptions cli("does things", "prog");
    cli.value("--out", "PATH", "output file", [](const std::string &) {
        return 0;
    });
    cli.number("--count", "N", "how many", 10, [](std::uint64_t) {
        return 0;
    });
    cli.toggle("--verbose", "say more", [] { return 0; });

    std::ostringstream os;
    cli.usage(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("prog — does things"), std::string::npos);
    EXPECT_NE(text.find("  --out PATH"), std::string::npos);
    EXPECT_NE(text.find("  --count N"), std::string::npos);
    EXPECT_NE(text.find("  --verbose"), std::string::npos);
    EXPECT_NE(text.find("  --help"), std::string::npos);
    EXPECT_NE(text.find("'--flag value' and '--flag=value'"),
              std::string::npos);

    // Help columns align: every flag's description starts at the
    // same offset (column 22) when the head fits.
    EXPECT_NE(text.find("  --out PATH          output file"),
              std::string::npos);
    EXPECT_NE(text.find("  --verbose           say more"),
              std::string::npos);
}

TEST(CliOptionsDeath, MalformedValuesExitWithStatusTwo)
{
    CliOptions cli("a test program", "testprog");
    cli.value("--out", "PATH", "output file",
              [](const std::string &) { return 0; });
    cli.number("--count", "N", "how many", 100,
               [](std::uint64_t) { return 0; });
    cli.toggle("--verbose", "say more", [] { return 0; });

    EXPECT_EXIT(parseArgs(cli, {"--out"}),
                testing::ExitedWithCode(2), "--out needs a value");
    EXPECT_EXIT(parseArgs(cli, {"--count", "-1"}),
                testing::ExitedWithCode(2), "non-negative number");
    EXPECT_EXIT(parseArgs(cli, {"--count", "12zebras"}),
                testing::ExitedWithCode(2), "non-negative number");
    EXPECT_EXIT(parseArgs(cli, {"--count", "101"}),
                testing::ExitedWithCode(2),
                "out of range \\(max 100\\)");
    EXPECT_EXIT(parseArgs(cli, {"--verbose=yes"}),
                testing::ExitedWithCode(2), "does not take a value");
}

TEST(CliHelpers, SplitListDropsEmptiesAndLoweredLowercases)
{
    using triarch::study::lowered;
    using triarch::study::splitList;

    EXPECT_EQ(splitList("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitList("a,,c,"),
              (std::vector<std::string>{"a", "c"}));
    EXPECT_TRUE(splitList("").empty());
    EXPECT_EQ(lowered("ViRaM"), "viram");
}

} // namespace
