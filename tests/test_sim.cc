/**
 * @file
 * Unit tests for the simulation base library: bit utilities, RNG
 * determinism, statistics, and table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/bitutil.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

namespace triarch
{
namespace
{

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(BitUtil, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(0, 8), 0u);
    EXPECT_EQ(ceilDiv(1, 8), 1u);
    EXPECT_EQ(ceilDiv(8, 8), 1u);
    EXPECT_EQ(ceilDiv(9, 8), 2u);
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
}

TEST(BitUtil, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    EXPECT_EQ(reverseBits(1, 7), 64u);
    for (std::uint32_t v = 0; v < 128; ++v)
        EXPECT_EQ(reverseBits(reverseBits(v, 7), 7), v);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xABCD, 4, 8), 0xBCu);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(BitUtil, FloatWordRoundTrip)
{
    for (float f : {0.0f, 1.5f, -3.25f, 1e-20f, 1e20f}) {
        EXPECT_EQ(wordToFloat(floatToWord(f)), f);
    }
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, FloatRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
        const float s = rng.nextSignedFloat();
        EXPECT_GE(s, -1.0f);
        EXPECT_LT(s, 1.0f);
    }
}

TEST(Rng, BelowBound)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Stats, ScalarBasics)
{
    stats::Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stats, DistributionBuckets)
{
    stats::Distribution d(0.0, 10.0, 10);
    d.sample(-1.0);
    d.sample(0.5);
    d.sample(9.5);
    d.sample(10.0);
    EXPECT_EQ(d.under(), 1u);
    EXPECT_EQ(d.over(), 1u);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(9), 1u);
    EXPECT_EQ(d.samples(), 4u);
}

TEST(Stats, GroupLookupAndDump)
{
    stats::Scalar hits, misses;
    stats::StatGroup g("cache");
    g.addScalar("hits", &hits, "cache hits");
    g.addScalar("misses", &misses);
    hits += 3;
    EXPECT_EQ(g.scalar("hits"), 3u);
    EXPECT_TRUE(g.hasScalar("misses"));
    EXPECT_FALSE(g.hasScalar("bogus"));

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("cache.hits 3"), std::string::npos);

    g.resetAll();
    EXPECT_EQ(g.scalar("hits"), 0u);
}

TEST(Stats, GroupUnknownStatDies)
{
    stats::Scalar s;
    stats::StatGroup g("g");
    g.addScalar("a", &s);
    EXPECT_DEATH(g.scalar("b"), "unknown scalar");
}

TEST(Stats, AtomicScalarRegistersLikeAScalar)
{
    stats::AtomicScalar hits;
    stats::StatGroup g("cache");
    g.addAtomicScalar("hits", &hits, "served lookups");
    ++hits;
    hits += 2;
    EXPECT_TRUE(g.hasScalar("hits"));
    EXPECT_EQ(g.scalar("hits"), 3u);

    const auto names = g.scalarNames();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "hits");

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("cache.hits 3"), std::string::npos);

    g.resetAll();
    EXPECT_EQ(g.scalar("hits"), 0u);
}

TEST(Stats, GroupRendersAveragesAndDistributions)
{
    stats::Average vl;
    stats::Distribution share(0.0, 1.0, 4);
    stats::StatGroup g("m");
    g.addAverage("avg_vl", &vl, "mean vector length");
    g.addDistribution("share", &share, "per-tile share");

    vl.sample(32.0);
    vl.sample(64.0);
    share.sample(0.1);
    share.sample(0.9);
    share.sample(2.0);      // overflow

    EXPECT_DOUBLE_EQ(g.average("avg_vl"), 48.0);
    EXPECT_EQ(&g.distribution("share"), &share);

    std::ostringstream os;
    g.dump(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("m.avg_vl"), std::string::npos);
    EXPECT_NE(s.find("mean vector length"), std::string::npos);
    EXPECT_NE(s.find("m.share mean"), std::string::npos);
    EXPECT_NE(s.find("m.share[0,0.25) 1"), std::string::npos);
    EXPECT_NE(s.find("m.share[>=1] 1"), std::string::npos);

    g.resetAll();
    EXPECT_DOUBLE_EQ(g.average("avg_vl"), 0.0);
    EXPECT_EQ(share.samples(), 0u);
    EXPECT_EQ(share.numBuckets(), 4u) << "reset keeps the layout";
}

TEST(Stats, ReadingsSnapshotEveryKind)
{
    stats::Scalar a;
    stats::AtomicScalar b;
    stats::Average avg;
    stats::Distribution dist(0.0, 2.0, 2);
    stats::StatGroup g("g");
    g.addScalar("a", &a, "plain");
    g.addAtomicScalar("b", &b, "atomic");
    g.addAverage("avg", &avg);
    g.addDistribution("dist", &dist);

    a += 7;
    b += 9;
    avg.sample(1.5);
    dist.sample(0.5);
    dist.sample(1.5);

    const auto scalars = g.scalarReadings();
    ASSERT_EQ(scalars.size(), 2u);
    EXPECT_EQ(scalars[0].name, "a");
    EXPECT_EQ(scalars[0].value, 7u);
    EXPECT_EQ(scalars[0].desc, "plain");
    EXPECT_EQ(scalars[1].name, "b");
    EXPECT_EQ(scalars[1].value, 9u);

    const auto averages = g.averageReadings();
    ASSERT_EQ(averages.size(), 1u);
    EXPECT_DOUBLE_EQ(averages[0].mean, 1.5);
    EXPECT_EQ(averages[0].samples, 1u);

    const auto dists = g.distributionReadings();
    ASSERT_EQ(dists.size(), 1u);
    EXPECT_DOUBLE_EQ(dists[0].low, 0.0);
    EXPECT_DOUBLE_EQ(dists[0].high, 2.0);
    EXPECT_EQ(dists[0].samples, 2u);
    ASSERT_EQ(dists[0].buckets.size(), 2u);
    EXPECT_EQ(dists[0].buckets[0], 1u);
    EXPECT_EQ(dists[0].buckets[1], 1u);
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(triarch_panic("boom ", 42), "boom 42");
}

TEST(Logging, AssertPassesAndFails)
{
    triarch_assert(1 + 1 == 2, "fine");
    EXPECT_DEATH(triarch_assert(false, "broken"), "broken");
}

TEST(Table, RendersAlignedCells)
{
    Table t("Demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "23,456"});
    std::ostringstream os;
    t.render(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("23,456"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(std::uint64_t{1234567}), "1,234,567");
    EXPECT_EQ(Table::num(std::uint64_t{12}), "12");
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

TEST(Table, CsvOutput)
{
    Table t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(BarChart, RendersLogScaleBars)
{
    BarChart chart("Speedup", true);
    chart.group("corner turn");
    chart.bar("viram", 52.9);
    chart.bar("raw", 200.0);
    std::ostringstream os;
    chart.render(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("[log scale]"), std::string::npos);
    EXPECT_NE(s.find("viram"), std::string::npos);
    EXPECT_NE(s.find('#'), std::string::npos);
}

} // namespace
} // namespace triarch

// Re-opened for renderer edge cases.
namespace triarch
{
namespace
{

TEST(Table, EmptyTableRendersNothing)
{
    Table t("Empty");
    std::ostringstream os;
    t.render(os);
    EXPECT_TRUE(os.str().empty());
}

TEST(Table, RaggedRowsPadded)
{
    Table t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3", "4"});
    std::ostringstream os;
    t.render(os);    // must not crash; 4 columns total
    EXPECT_NE(os.str().find("4"), std::string::npos);
}

TEST(Table, CsvQuotesCellsWithSeparators)
{
    Table t;
    t.row({Table::num(std::uint64_t{1234567}), "plain"});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "\"1,234,567\",plain\n");
}

TEST(BarChart, EmptyChartRendersNothing)
{
    BarChart chart("none", false);
    std::ostringstream os;
    chart.render(os);
    EXPECT_TRUE(os.str().empty());
}

TEST(BarChart, LogScaleRejectsNonPositive)
{
    BarChart chart("bad", true);
    EXPECT_DEATH(chart.bar("x", 0.0), "positive value");
}

TEST(BarChart, LinearScaleHandlesZeroBars)
{
    BarChart chart("lin", false);
    chart.bar("zero", 0.0);
    chart.bar("one", 1.0);
    std::ostringstream os;
    chart.render(os);
    EXPECT_NE(os.str().find("zero"), std::string::npos);
}

} // namespace
} // namespace triarch
