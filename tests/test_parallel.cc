/**
 * @file
 * Tests for the parallel experiment engine and the registry-based
 * dispatch behind it: bit-identical determinism of ParallelRunner
 * against the serial Runner at several thread counts, full coverage
 * of the built-in MappingRegistry, the typed unknown-pair error
 * path, result-cache behavior, config hashing, and the JSON result
 * sink.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "study/parallel.hh"
#include "study/registry.hh"
#include "study/result_sink.hh"

namespace triarch::study
{
namespace
{

/** The reduced workload from test_study.cc: fast but exercises all
 *  fifteen cells end to end. */
StudyConfig
smallConfig()
{
    StudyConfig cfg;
    cfg.matrixSize = 128;
    cfg.cslc.subBands = 8;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    cfg.beam.elements = 256;
    cfg.beam.dwells = 2;
    cfg.jammerBins = {64, 200};
    return cfg;
}

// ---------------------------------------------------------------
// Determinism: the tentpole guarantee. Parallel execution at any
// thread count is bit-identical to the serial Runner.
// ---------------------------------------------------------------

TEST(ParallelDeterminism, BitIdenticalToSerialAtAnyThreadCount)
{
    const StudyConfig cfg = smallConfig();
    Runner serial(cfg);
    const std::vector<RunResult> expect = serial.runAll();
    ASSERT_EQ(expect.size(), 15u);

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner par(cfg, threads, nullptr,
                           ParallelRunner::noCache());
        const std::vector<RunResult> got = par.runAll();
        ASSERT_EQ(got.size(), expect.size()) << threads << " threads";
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got[i], expect[i])
                << threads << " threads, cell " << i << " ("
                << machineName(expect[i].machine) << " / "
                << kernelName(expect[i].kernel) << ")";
        }
    }
}

TEST(ParallelDeterminism, RepeatedRunsAreIdentical)
{
    const StudyConfig cfg = smallConfig();
    ParallelRunner par(cfg, 4, nullptr, ParallelRunner::noCache());
    const auto first = par.runAll();
    const auto second = par.runAll();
    EXPECT_EQ(first, second);
}

TEST(ParallelRunner, CellSubsetPreservesRequestOrder)
{
    const std::vector<Cell> cells = {
        {MachineId::Raw, KernelId::BeamSteering},
        {MachineId::Viram, KernelId::CornerTurn},
        {MachineId::Raw, KernelId::BeamSteering},
    };
    ParallelRunner par(smallConfig(), 2, nullptr,
                       ParallelRunner::noCache());
    const auto results = par.runCells(cells);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].machine, MachineId::Raw);
    EXPECT_EQ(results[0].kernel, KernelId::BeamSteering);
    EXPECT_EQ(results[1].machine, MachineId::Viram);
    EXPECT_EQ(results[1].kernel, KernelId::CornerTurn);
    EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelRunner, WorkQueueOverlapsIndependentCells)
{
    // Latency-bound mappings (sleeps) expose scheduling overlap even
    // on a single-core host, where CPU-bound cells cannot speed up.
    // 15 cells x 40 ms is 600 ms serially; 8 workers need two waves,
    // so anything under half the serial time proves overlap.
    MappingRegistry sleepy;
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels()) {
            sleepy.add(machine, kernel,
                       [machine, kernel](const StudyConfig &,
                                         const Workloads &) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(40));
                           RunResult r;
                           r.machine = machine;
                           r.kernel = kernel;
                           r.cycles = 1;
                           r.validated = true;
                           return r;
                       });
        }
    }
    ParallelRunner par(smallConfig(), 8, &sleepy,
                       ParallelRunner::noCache());
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = par.runAll();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    EXPECT_EQ(results.size(), 15u);
    EXPECT_LT(ms, 300.0) << "8 workers should overlap the sleeps";
}

// ---------------------------------------------------------------
// Registry coverage: every (machine, kernel) pair of the study is
// registered, and unknown pairs surface as typed errors.
// ---------------------------------------------------------------

TEST(MappingRegistryTest, BuiltinCoversEveryMachineKernelPair)
{
    const MappingRegistry &reg = MappingRegistry::builtin();
    EXPECT_EQ(reg.size(),
              allMachines().size() * allKernels().size());
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels()) {
            EXPECT_NE(reg.find(machine, kernel), nullptr)
                << machineName(machine) << " / " << kernelName(kernel);
        }
    }
    EXPECT_EQ(reg.registeredPairs().size(), reg.size());
}

TEST(MappingRegistryTest, UnknownPairIsATypedError)
{
    const MappingRegistry empty;
    EXPECT_EQ(empty.find(MachineId::Viram, KernelId::Cslc), nullptr);

    Runner runner(smallConfig(), &empty);
    const RunOutcome outcome =
        runner.tryRun(MachineId::Viram, KernelId::Cslc);
    ASSERT_TRUE(std::holds_alternative<MappingError>(outcome));
    const auto &err = std::get<MappingError>(outcome);
    EXPECT_EQ(err.machine, MachineId::Viram);
    EXPECT_EQ(err.kernel, KernelId::Cslc);
    EXPECT_NE(err.message.find("no kernel mapping registered"),
              std::string::npos);
    EXPECT_NE(err.message.find(machineName(MachineId::Viram)),
              std::string::npos);
    EXPECT_NE(err.message.find(kernelName(KernelId::Cslc)),
              std::string::npos);
}

TEST(MappingRegistryTest, PartialRegistryMixesResultsAndErrors)
{
    // One real mapping borrowed from the builtin table, the rest
    // missing: tryRunCells must slot each outcome by request index.
    MappingRegistry partial;
    partial.add(MachineId::Viram, KernelId::BeamSteering,
                *MappingRegistry::builtin().find(
                    MachineId::Viram, KernelId::BeamSteering));

    ParallelRunner par(smallConfig(), 2, &partial,
                       ParallelRunner::noCache());
    const auto outcomes = par.tryRunCells(
        {{MachineId::Viram, KernelId::BeamSteering},
         {MachineId::Raw, KernelId::Cslc}});
    ASSERT_EQ(outcomes.size(), 2u);
    ASSERT_TRUE(std::holds_alternative<RunResult>(outcomes[0]));
    EXPECT_TRUE(std::get<RunResult>(outcomes[0]).validated);
    ASSERT_TRUE(std::holds_alternative<MappingError>(outcomes[1]));
    EXPECT_EQ(std::get<MappingError>(outcomes[1]).machine,
              MachineId::Raw);
}

// ---------------------------------------------------------------
// Result cache: second sweep is served from cache; distinct configs
// do not collide.
// ---------------------------------------------------------------

TEST(ResultCacheTest, SecondSweepIsServedFromCache)
{
    // Wrap every builtin mapping in an invocation counter so cache
    // hits are observable as "the mapping did not run again".
    static std::atomic<unsigned> invocations{0};
    invocations = 0;
    MappingRegistry counting;
    for (auto [machine, kernel] :
         MappingRegistry::builtin().registeredPairs()) {
        const KernelMapping inner =
            *MappingRegistry::builtin().find(machine, kernel);
        counting.add(machine, kernel,
                     [inner](const StudyConfig &cfg,
                             const Workloads &work) {
                         ++invocations;
                         return inner(cfg, work);
                     });
    }

    ResultCache cache;
    ParallelRunner par(smallConfig(), 4, &counting, &cache);
    const auto first = par.runAll();
    EXPECT_EQ(invocations.load(), 15u);
    EXPECT_EQ(cache.size(), 15u);
    EXPECT_EQ(cache.misses(), 15u);

    const auto second = par.runAll();
    EXPECT_EQ(invocations.load(), 15u) << "cache should have served";
    EXPECT_EQ(cache.hits(), 15u);
    EXPECT_EQ(first, second);
}

TEST(ResultCacheTest, DistinctConfigsDoNotCollide)
{
    ResultCache cache;
    StudyConfig a = smallConfig();
    StudyConfig b = smallConfig();
    b.seed = a.seed + 1;
    ASSERT_NE(studyConfigHash(a), studyConfigHash(b));

    RunResult r;
    r.machine = MachineId::Viram;
    r.kernel = KernelId::Cslc;
    r.cycles = 123;
    cache.put(r, studyConfigHash(a));
    EXPECT_TRUE(cache.get(r.machine, r.kernel, studyConfigHash(a))
                    .has_value());
    EXPECT_FALSE(cache.get(r.machine, r.kernel, studyConfigHash(b))
                     .has_value());
}

TEST(ConfigHash, SensitiveToEveryWorkloadField)
{
    const StudyConfig base = smallConfig();
    auto mutated = [&](auto &&mutate) {
        StudyConfig cfg = base;
        mutate(cfg);
        return studyConfigHash(cfg);
    };
    const std::uint64_t h = studyConfigHash(base);
    EXPECT_NE(h, mutated([](StudyConfig &c) { c.matrixSize = 256; }));
    EXPECT_NE(h, mutated([](StudyConfig &c) { c.seed = 99; }));
    EXPECT_NE(h, mutated([](StudyConfig &c) { c.beam.dwells = 3; }));
    EXPECT_NE(h,
              mutated([](StudyConfig &c) { c.jammerBins = {64}; }));
    EXPECT_NE(h, mutated([](StudyConfig &c) { c.cslc.subBands = 4; }));
    EXPECT_EQ(h, studyConfigHash(base)) << "hash must be stable";
}

// ---------------------------------------------------------------
// Result sink: structured JSON document.
// ---------------------------------------------------------------

TEST(ResultSinkTest, EmitsWellFormedDocument)
{
    const StudyConfig cfg = smallConfig();
    ParallelRunner par(cfg, 2, nullptr, ParallelRunner::noCache());

    ResultSink sink(cfg);
    sink.add(par.runCells({{MachineId::Raw, KernelId::Cslc},
                           {MachineId::Viram, KernelId::CornerTurn}}));
    sink.metadata("threads", "2");
    EXPECT_EQ(sink.size(), 2u);

    std::ostringstream os;
    sink.writeJson(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"schema\": \"triarch.results.v1\""),
              std::string::npos);
    EXPECT_NE(s.find("\"machine\": \"Raw\""), std::string::npos);
    EXPECT_NE(s.find("\"kernel_id\": \"ct\""), std::string::npos);
    EXPECT_NE(s.find("\"threads\": \"2\""), std::string::npos);
    EXPECT_NE(s.find("\"measured_unbalanced\""), std::string::npos);
    EXPECT_NE(s.find("\"validated\": true"), std::string::npos);
}

} // namespace
} // namespace triarch::study
