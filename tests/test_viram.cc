/**
 * @file
 * Tests for the VIRAM machine model: functional semantics of the
 * vector ISA, scoreboard timing properties (issue rate, chaining,
 * unit restrictions, address-generator limits), memory-system
 * overheads, and end-to-end kernel correctness against the reference
 * implementations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/fft.hh"
#include "sim/bitutil.hh"
#include "viram/kernels_viram.hh"
#include "viram/machine.hh"

namespace triarch::viram
{
namespace
{

using kernels::cfloat;

ViramConfig
testConfig()
{
    ViramConfig cfg;
    cfg.memBytes = 2 * 1024 * 1024;     // keep tests light
    return cfg;
}

TEST(ViramMachine, PokePeekRoundTrip)
{
    ViramMachine m(testConfig());
    const Addr a = m.alloc(64, "buf");
    std::vector<Word> data{1, 2, 3, 4};
    m.pokeWords(a, data);
    EXPECT_EQ(m.peekWords(a, 4), data);
}

TEST(ViramMachine, AllocRespectsAlignmentAndBounds)
{
    ViramMachine m(testConfig());
    const Addr a = m.alloc(10, "a");
    const Addr b = m.alloc(10, "b");
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_DEATH(
        {
            ViramMachine small(testConfig());
            small.alloc(3 * 1024 * 1024, "too big");
        },
        "exhausted");
}

TEST(ViramMachine, SetvlClampsToMax)
{
    ViramMachine m(testConfig());
    EXPECT_EQ(m.setvl(100), 64u);
    EXPECT_EQ(m.setvl(5), 5u);
}

TEST(ViramMachine, UnitLoadStoreMovesData)
{
    ViramMachine m(testConfig());
    const Addr src = m.alloc(256, "src");
    const Addr dst = m.alloc(256, "dst");
    std::vector<Word> data(64);
    for (unsigned i = 0; i < 64; ++i)
        data[i] = i * 3 + 1;
    m.pokeWords(src, data);

    m.setvl(64);
    m.vldUnit(4, src);
    m.vstUnit(4, dst);
    EXPECT_EQ(m.peekWords(dst, 64), data);
}

TEST(ViramMachine, StridedLoadGathers)
{
    ViramMachine m(testConfig());
    const Addr src = m.alloc(1024, "src");
    std::vector<Word> data(256);
    for (unsigned i = 0; i < 256; ++i)
        data[i] = i;
    m.pokeWords(src, data);

    m.setvl(8);
    m.vldStride(4, src, 16);    // every 4th word
    const Addr dst = m.alloc(64, "dst");
    m.vstUnit(4, dst);
    auto out = m.peekWords(dst, 8);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], i * 4);
}

TEST(ViramMachine, IntArithmeticAndShifts)
{
    ViramMachine m(testConfig());
    const Addr a = m.alloc(64, "a");
    std::vector<Word> data{8, 16, static_cast<Word>(-32), 64};
    m.pokeWords(a, data);

    m.setvl(4);
    m.vldUnit(4, a);
    m.vaddIs(5, 4, 100);
    m.vsraI(6, 4, 2);
    m.vshlI(7, 4, 1);
    m.vaddI(8, 5, 7);

    const Addr d = m.alloc(64, "d");
    m.vstUnit(6, d);
    auto sra = m.peekWords(d, 4);
    EXPECT_EQ(static_cast<std::int32_t>(sra[2]), -8);
    m.vstUnit(8, d);
    auto sum = m.peekWords(d, 4);
    EXPECT_EQ(sum[0], 8u + 100 + 16);
}

TEST(ViramMachine, FloatArithmetic)
{
    ViramMachine m(testConfig());
    const Addr a = m.alloc(64, "a");
    std::vector<Word> data{floatToWord(1.5f), floatToWord(-2.0f)};
    m.pokeWords(a, data);

    m.setvl(2);
    m.vldUnit(4, a);
    m.vmulF(5, 4, 4);
    m.vaddF(6, 4, 5);
    m.vnegF(7, 6);
    m.vscaleF(8, 7, 0.5f);

    const Addr d = m.alloc(64, "d");
    m.vstUnit(8, d);
    auto out = m.peekWords(d, 2);
    // x=1.5: (1.5 + 2.25) = 3.75; neg -> -3.75; scale -> -1.875
    EXPECT_FLOAT_EQ(wordToFloat(out[0]), -1.875f);
    EXPECT_FLOAT_EQ(wordToFloat(out[1]), -(-2.0f + 4.0f) * 0.5f);
}

TEST(ViramMachine, PermuteTwoSources)
{
    ViramMachine m(testConfig());
    const Addr a = m.alloc(512, "a");
    std::vector<Word> data(128);
    for (unsigned i = 0; i < 128; ++i)
        data[i] = 1000 + i;
    m.pokeWords(a, data);

    m.setvl(64);
    m.vldUnit(4, a);
    m.vldUnit(5, a + 256);
    std::vector<std::uint16_t> idx(64);
    for (unsigned i = 0; i < 64; ++i)
        idx[i] = static_cast<std::uint16_t>(127 - i);   // reverse concat
    m.vperm2(6, 4, 5, idx);

    const Addr d = m.alloc(256, "d");
    m.vstUnit(6, d);
    auto out = m.peekWords(d, 64);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], 1000u + 127 - i);
}

// ---------------------------------------------------------------
// Timing properties.
// ---------------------------------------------------------------

TEST(ViramTiming, IndependentOpsPipelineOnOneUnit)
{
    ViramMachine m(testConfig());
    m.setvl(64);
    const Cycles t0 = m.completionTime();
    // 10 independent FP ops on VAU0: unit busy 8 cycles each.
    for (unsigned i = 0; i < 10; ++i)
        m.vmulF(4 + (i % 4), 8, 9);
    const Cycles dt = m.completionTime() - t0;
    // Occupancy-limited: ~10 * 8 plus one startup, not 10 * (8 + s).
    EXPECT_GE(dt, 80u);
    EXPECT_LE(dt, 80u + 2 * m.config().arithStartup + 2);
}

TEST(ViramTiming, ChainingKeepsDependentChainOccupancyBound)
{
    ViramConfig cfg = testConfig();
    ViramMachine m(cfg);
    m.setvl(64);
    m.vbcast(4, 1);
    const Cycles t0 = m.completionTime();
    for (unsigned i = 0; i < 10; ++i)
        m.vaddF(5 + (i % 2), 5 + ((i + 1) % 2), 4);
    const Cycles dt = m.completionTime() - t0;
    // With chaining a dependent same-unit chain costs about the unit
    // occupancy (10 x 8), not busy + startup per hop.
    EXPECT_GE(dt, 10u * 8);
    EXPECT_LE(dt, 10u * 8 + 3 * cfg.arithStartup + cfg.chainLatency);
}

TEST(ViramTiming, WithoutChainingDependentChainPaysFullLatency)
{
    ViramConfig cfg = testConfig();
    cfg.chainLatency = 1000;    // effectively disables chaining
    ViramMachine m(cfg);
    m.setvl(64);
    m.vbcast(4, 1);
    const Cycles t0 = m.completionTime();
    for (unsigned i = 0; i < 10; ++i)
        m.vaddF(5 + (i % 2), 5 + ((i + 1) % 2), 4);
    const Cycles dt = m.completionTime() - t0;
    // Every hop now waits for the producer's full vector.
    EXPECT_GE(dt, 10u * (8 + cfg.arithStartup) - cfg.arithStartup - 8);
}

TEST(ViramTiming, FloatOpsSerializeOnVau0)
{
    ViramMachine m(testConfig());
    m.setvl(64);
    const Cycles t0 = m.completionTime();
    for (unsigned i = 0; i < 8; ++i)
        m.vmulF(4 + (i % 4), 8, 9);     // independent
    const Cycles fpTime = m.completionTime() - t0;

    ViramMachine m2(testConfig());
    m2.setvl(64);
    const Cycles t1 = m2.completionTime();
    for (unsigned i = 0; i < 8; ++i)
        m2.vaddI(4 + (i % 4), 8, 9);    // independent, dual-issue VAUs
    const Cycles intTime = m2.completionTime() - t1;

    // Integer work spreads over two VAUs and finishes in about half
    // the time of FP work pinned to VAU0 (Section 4.3's 1.52x).
    EXPECT_GT(fpTime, intTime + intTime / 3);
}

TEST(ViramTiming, StridedLoadsSlowerThanUnit)
{
    ViramMachine m(testConfig());
    const Addr a = m.alloc(1 << 20, "buf");
    m.setvl(64);

    m.resetTiming();
    for (unsigned i = 0; i < 32; ++i)
        m.vldUnit(4, a + i * 256);
    const Cycles unit = m.completionTime();

    m.resetTiming();
    for (unsigned i = 0; i < 32; ++i)
        m.vldStride(4, a + i * 4, 4096);
    const Cycles strided = m.completionTime();

    // 8 words/cycle unit vs 4 words/cycle strided plus row overhead.
    EXPECT_GT(strided, 3 * unit / 2);
}

TEST(ViramTiming, RowOverheadAccountedForStridedWalk)
{
    ViramMachine m(testConfig());
    const Addr a = m.alloc(1 << 20, "buf");
    m.setvl(64);
    m.resetTiming();
    m.vldStride(4, a, 4096);        // one element per row
    EXPECT_GT(m.rowOverheadCycles(), 0u);
    EXPECT_GT(m.statGroup().scalar("row_misses"), 0u);
}

TEST(ViramTiming, ResetTimingClearsClockAndStats)
{
    ViramMachine m(testConfig());
    m.setvl(64);
    m.vaddI(4, 5, 6);
    EXPECT_GT(m.completionTime(), 0u);
    m.resetTiming();
    EXPECT_EQ(m.completionTime(), 0u);
    EXPECT_EQ(m.vectorInstructions(), 0u);
}

TEST(ViramTiming, DescribeMentionsKeyResources)
{
    ViramMachine m(testConfig());
    const std::string d = m.describe();
    EXPECT_NE(d.find("address generators"), std::string::npos);
    EXPECT_NE(d.find("DRAM"), std::string::npos);
}

// ---------------------------------------------------------------
// The register-resident FFT building block.
// ---------------------------------------------------------------

TEST(ViramFft, MatchesReferenceFft)
{
    ViramMachine m(testConfig());
    ViramFft128 fft(m);

    std::vector<cfloat> x(128);
    for (unsigned i = 0; i < 128; ++i) {
        x[i] = cfloat(std::sin(0.1f * i), std::cos(0.3f * i));
    }

    const Addr buf = m.alloc(1024, "time");
    std::vector<Word> words(256);
    for (unsigned i = 0; i < 128; ++i) {
        words[2 * i] = floatToWord(x[i].real());
        words[2 * i + 1] = floatToWord(x[i].imag());
    }
    m.pokeWords(buf, words);

    const Addr planes = m.alloc(1024, "planes");
    fft.loadTimeBlock(buf);
    fft.transform(false);
    fft.storePlanes(planes);

    auto ref = x;
    kernels::fftRadix2(ref);

    auto got = m.peekWords(planes, 256);
    for (unsigned i = 0; i < 128; ++i) {
        const float re =
            wordToFloat(got[(i < 64 ? 0 : 64) + (i % 64)]);
        const float im =
            wordToFloat(got[128 + (i < 64 ? 0 : 64) + (i % 64)]);
        EXPECT_NEAR(re, ref[i].real(), 1e-3);
        EXPECT_NEAR(im, ref[i].imag(), 1e-3);
    }
}

TEST(ViramFft, InverseRoundTrip)
{
    ViramMachine m(testConfig());
    ViramFft128 fft(m);

    std::vector<Word> words(256);
    for (unsigned i = 0; i < 128; ++i) {
        words[2 * i] = floatToWord(0.25f * static_cast<float>(i % 7));
        words[2 * i + 1] = floatToWord(-0.5f + 0.01f * i);
    }
    const Addr buf = m.alloc(1024, "time");
    m.pokeWords(buf, words);

    const Addr planes = m.alloc(1024, "planes");
    fft.loadTimeBlock(buf);
    fft.transform(false);
    fft.storePlanes(planes);
    fft.loadPlanes(planes);
    fft.transform(true);
    const Addr planes2 = m.alloc(1024, "planes2");
    fft.storePlanes(planes2);

    auto got = m.peekWords(planes2, 256);
    for (unsigned i = 0; i < 128; ++i) {
        const float re =
            wordToFloat(got[(i < 64 ? 0 : 64) + (i % 64)]);
        const float im =
            wordToFloat(got[128 + (i < 64 ? 0 : 64) + (i % 64)]);
        EXPECT_NEAR(re, wordToFloat(words[2 * i]), 1e-4);
        EXPECT_NEAR(im, wordToFloat(words[2 * i + 1]), 1e-4);
    }
}

TEST(ViramFft, UsesPermShuffles)
{
    ViramMachine m(testConfig());
    ViramFft128 fft(m);
    const Addr buf = m.alloc(1024, "time");
    m.resetTiming();
    fft.loadTimeBlock(buf);
    fft.transform(false);
    // 7 stages x (4 gathers + 4 scatters) = 56 shuffles (the input
    // bit-reversal is folded into the first stage's gather tables).
    EXPECT_EQ(m.permInstructions(), 56u);
}

// ---------------------------------------------------------------
// End-to-end kernels vs reference.
// ---------------------------------------------------------------

TEST(ViramKernels, CornerTurnSmallMatchesReference)
{
    ViramMachine m(testConfig());
    kernels::WordMatrix src(128, 64);
    kernels::fillMatrix(src, 5);
    kernels::WordMatrix dst;
    const Cycles cycles = cornerTurnViram(m, src, dst);
    EXPECT_TRUE(kernels::isTransposeOf(src, dst));
    EXPECT_GT(cycles, 0u);
}

TEST(ViramKernels, CornerTurnStridedLoadsDominateMemory)
{
    ViramMachine m(testConfig());
    kernels::WordMatrix src(128, 64);
    kernels::fillMatrix(src, 6);
    kernels::WordMatrix dst;
    cornerTurnViram(m, src, dst);
    // Loads are strided (4/cycle), stores unit (8/cycle): VMU busy
    // must exceed the pure word count / 8.
    const std::uint64_t words = 2ULL * src.rows * src.cols;
    EXPECT_GT(m.vmuBusy(), words / 8);
}

TEST(ViramKernels, BeamSteeringMatchesReference)
{
    ViramMachine m(testConfig());
    kernels::BeamConfig cfg;
    cfg.elements = 200;     // keep the test fast; includes a tail group
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, 3);
    auto ref = kernels::beamSteerReference(cfg, tables);

    std::vector<std::int32_t> out;
    const Cycles cycles = beamSteeringViram(m, cfg, tables, out);
    EXPECT_EQ(out, ref);
    EXPECT_GT(cycles, 0u);
}

TEST(ViramKernels, CslcMatchesReferenceApproximately)
{
    ViramMachine m(testConfig());
    kernels::CslcConfig cfg;
    cfg.subBands = 5;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {100, 351}, 17);
    auto weights = kernels::estimateWeights(cfg, in);
    // The VIRAM mapping computes radix-2 FFTs; validate against the
    // radix-2 reference so radix rounding differences (amplified by
    // the cancellation subtract of near-equal large spectra) do not
    // mask real mapping bugs.
    auto ref = kernels::cslcReference(cfg, in, weights,
                                      kernels::FftAlgo::Radix2);

    kernels::CslcOutput out;
    const Cycles cycles = cslcViram(m, cfg, in, weights, out);
    EXPECT_GT(cycles, 0u);

    double maxErr = 0.0;
    for (unsigned mc = 0; mc < cfg.mainChannels; ++mc) {
        for (std::size_t i = 0; i < ref.main[mc].size(); ++i) {
            maxErr = std::max<double>(
                maxErr, std::abs(ref.main[mc][i] - out.main[mc][i]));
        }
    }
    // Radix-2 (VIRAM) vs mixed-radix (reference) rounding differs.
    EXPECT_LT(maxErr, 1e-2);
}

TEST(ViramKernels, CslcCancelsJammer)
{
    ViramMachine m(testConfig());
    kernels::CslcConfig cfg;
    cfg.subBands = 8;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {200}, 23);
    auto weights = kernels::estimateWeights(cfg, in);

    kernels::CslcOutput out;
    cslcViram(m, cfg, in, weights, out);
    EXPECT_GT(kernels::cancellationDepthDb(cfg, in, out), 15.0);
}

} // namespace
} // namespace triarch::viram

// Re-opened for the indexed (gather/scatter) memory operations.
namespace triarch::viram
{
namespace
{

TEST(ViramIndexed, GatherCollectsArbitraryElements)
{
    ViramConfig cfg;
    cfg.memBytes = 1 << 20;
    ViramMachine m(cfg);
    const Addr table = m.alloc(1024, "table");
    std::vector<Word> data(256);
    for (unsigned i = 0; i < 256; ++i)
        data[i] = 1000 + i;
    m.pokeWords(table, data);

    const Addr idxMem = m.alloc(64, "idx");
    m.pokeWords(idxMem, std::vector<Word>{250, 3, 99, 0});

    m.setvl(4);
    m.vldUnit(4, idxMem);       // index vector
    m.vldIndexed(5, table, 4);  // gather
    const Addr d = m.alloc(64, "d");
    m.vstUnit(5, d);
    EXPECT_EQ(m.peekWords(d, 4),
              (std::vector<Word>{1250, 1003, 1099, 1000}));
}

TEST(ViramIndexed, ScatterWritesArbitraryElements)
{
    ViramConfig cfg;
    cfg.memBytes = 1 << 20;
    ViramMachine m(cfg);
    const Addr dst = m.alloc(1024, "dst");
    const Addr idxMem = m.alloc(64, "idx");
    const Addr valMem = m.alloc(64, "val");
    m.pokeWords(idxMem, std::vector<Word>{7, 0, 200});
    m.pokeWords(valMem, std::vector<Word>{70, 80, 90});

    m.setvl(3);
    m.vldUnit(4, idxMem);
    m.vldUnit(5, valMem);
    m.vstIndexed(5, dst, 4);
    EXPECT_EQ(m.peekWords(dst + 7 * 4, 1)[0], 70u);
    EXPECT_EQ(m.peekWords(dst, 1)[0], 80u);
    EXPECT_EQ(m.peekWords(dst + 200 * 4, 1)[0], 90u);
}

TEST(ViramIndexed, GatherRunsAtAddressGeneratorRate)
{
    ViramConfig cfg;
    cfg.memBytes = 1 << 20;
    ViramMachine m(cfg);
    const Addr table = m.alloc(1 << 16, "table");
    const Addr idxMem = m.alloc(256, "idx");
    std::vector<Word> idx(64);
    for (unsigned i = 0; i < 64; ++i)
        idx[i] = i * 7 % 4096;
    m.pokeWords(idxMem, idx);

    m.setvl(64);
    m.vldUnit(4, idxMem);
    m.resetTiming();
    m.vldIndexed(5, table, 4);
    // At least ceil(64/4) = 16 VMU cycles; more with row overheads.
    EXPECT_GE(m.vmuBusy(), 16u);
}

TEST(ViramIndexed, GatherOutOfRangeDies)
{
    ViramConfig cfg;
    cfg.memBytes = 1 << 16;
    ViramMachine m(cfg);
    const Addr idxMem = m.alloc(64, "idx");
    m.pokeWords(idxMem, std::vector<Word>{1 << 20});
    m.setvl(1);
    m.vldUnit(4, idxMem);
    EXPECT_DEATH(m.vldIndexed(5, 0, 4), "outside on-chip");
}

} // namespace
} // namespace triarch::viram
