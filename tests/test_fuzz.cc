/**
 * @file
 * Tests for the config validator and the differential fuzz
 * subsystem: every validator rule fires with its typed field, the
 * enumerator is a pure function of its seed (same list at any
 * thread count), the differential runner is clean on valid configs
 * and thread-count independent, the minimizer shrinks a failing
 * config while keeping the failure, and the boundary shapes the
 * sweep covers (e.g. fewer beam elements than Raw tiles) complete
 * instead of hanging.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "study/config_check.hh"
#include "study/fuzz.hh"
#include "study/registry.hh"

namespace triarch::study
{
namespace
{

/** Valid non-default config, small enough to run everywhere. */
StudyConfig
tinyConfig()
{
    StudyConfig cfg;
    cfg.matrixSize = 64;
    cfg.cslc.subBands = 2;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    cfg.beam.elements = 48;
    cfg.beam.directions = 2;
    cfg.beam.dwells = 1;
    cfg.jammerBins = {3, 50};
    return cfg;
}

/** The field of the first error, or "" when the config is valid. */
std::string
firstErrorField(const StudyConfig &cfg)
{
    auto err = validateConfig(cfg);
    return err ? err->field : "";
}

// ---------------------------------------------------------------
// ConfigValidator rules.
// ---------------------------------------------------------------

TEST(ConfigValidator, AcceptsPaperDefaultsAndTinyConfig)
{
    EXPECT_EQ(validateConfig(StudyConfig{}), std::nullopt);
    EXPECT_EQ(validateConfig(tinyConfig()), std::nullopt);
}

TEST(ConfigValidator, RejectsDegenerateMatrix)
{
    StudyConfig cfg = tinyConfig();
    cfg.matrixSize = 0;
    EXPECT_EQ(firstErrorField(cfg), "matrixSize");
    cfg.matrixSize = 1;
    EXPECT_EQ(firstErrorField(cfg), "matrixSize");
    cfg.matrixSize = 100;   // not a multiple of 64
    EXPECT_EQ(firstErrorField(cfg), "matrixSize");
    cfg.matrixSize = 64 * 1024;  // over the memory cap
    EXPECT_EQ(firstErrorField(cfg), "matrixSize");
}

TEST(ConfigValidator, RejectsBadSubBandLen)
{
    StudyConfig cfg = tinyConfig();
    cfg.cslc.subBandLen = 100;   // not a power of two
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    auto err = validateConfig(cfg);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->field, "cslc.subBandLen");
    EXPECT_NE(err->message.find("power of two"), std::string::npos);

    cfg.cslc.subBandLen = 64;    // a power of two, but not 128
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    err = validateConfig(cfg);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->field, "cslc.subBandLen");
    EXPECT_NE(err->message.find("128"), std::string::npos);
}

TEST(ConfigValidator, RejectsTilingMismatchAndDegenerateBands)
{
    StudyConfig cfg = tinyConfig();
    cfg.cslc.samples += 1;
    EXPECT_EQ(firstErrorField(cfg), "cslc.samples");

    cfg = tinyConfig();
    cfg.cslc.subBands = 0;
    EXPECT_EQ(firstErrorField(cfg), "cslc.subBands");

    cfg = tinyConfig();
    cfg.cslc.subBandStride = 0;
    cfg.cslc.samples = cfg.cslc.subBandLen;
    EXPECT_EQ(firstErrorField(cfg), "cslc.subBandStride");
}

TEST(ConfigValidator, RejectsUnsupportedChannelCounts)
{
    StudyConfig cfg = tinyConfig();
    cfg.cslc.mainChannels = 1;
    EXPECT_EQ(firstErrorField(cfg), "cslc.mainChannels");

    cfg = tinyConfig();
    cfg.cslc.auxChannels = 3;
    EXPECT_EQ(firstErrorField(cfg), "cslc.auxChannels");
}

TEST(ConfigValidator, RejectsOutOfRangeJammerBins)
{
    StudyConfig cfg = tinyConfig();
    cfg.jammerBins = {0, cfg.cslc.samples - 1};     // in range
    EXPECT_EQ(validateConfig(cfg), std::nullopt);

    cfg.jammerBins = {3, cfg.cslc.samples};         // one past the end
    auto err = validateConfig(cfg);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->field, "jammerBins[1]");
}

TEST(ConfigValidator, RejectsDegenerateBeamShapes)
{
    StudyConfig cfg = tinyConfig();
    cfg.beam.elements = 0;
    EXPECT_EQ(firstErrorField(cfg), "beam.elements");

    cfg = tinyConfig();
    cfg.beam.directions = 0;
    EXPECT_EQ(firstErrorField(cfg), "beam.directions");

    cfg = tinyConfig();
    cfg.beam.dwells = 0;
    EXPECT_EQ(firstErrorField(cfg), "beam.dwells");

    cfg = tinyConfig();
    cfg.beam.shift = 32;
    EXPECT_EQ(firstErrorField(cfg), "beam.shift");
    cfg.beam.shift = 31;
    EXPECT_EQ(validateConfig(cfg), std::nullopt);
}

TEST(ConfigValidator, ReportsEveryViolationInOrder)
{
    StudyConfig cfg = tinyConfig();
    cfg.matrixSize = 100;
    cfg.beam.shift = 40;
    cfg.jammerBins = {cfg.cslc.samples + 5};
    const std::vector<ConfigError> errs = configErrors(cfg);
    ASSERT_EQ(errs.size(), 3u);
    EXPECT_EQ(errs[0].field, "matrixSize");
    EXPECT_EQ(errs[1].field, "jammerBins[0]");
    EXPECT_EQ(errs[2].field, "beam.shift");
    EXPECT_EQ(describe(errs[0]),
              "matrixSize: " + errs[0].message);
}

TEST(ConfigValidator, BuildWorkloadsExitsWithTypedError)
{
    StudyConfig cfg = tinyConfig();
    cfg.beam.shift = 33;
    EXPECT_EXIT(buildWorkloads(cfg), testing::ExitedWithCode(1),
                "invalid StudyConfig \\(beam.shift\\)");
}

// ---------------------------------------------------------------
// Enumerator determinism.
// ---------------------------------------------------------------

TEST(FuzzEnumerator, SameSeedSameListAtAnyThreadCount)
{
    FuzzOptions base;
    base.seed = 11;
    const std::vector<StudyConfig> expect = enumerateFuzzConfigs(base);
    EXPECT_FALSE(expect.empty());

    for (unsigned threads : {1u, 2u, 8u}) {
        FuzzOptions opts = base;
        opts.threads = threads;
        EXPECT_EQ(enumerateFuzzConfigs(opts), expect)
            << threads << " threads";
    }
}

TEST(FuzzEnumerator, DifferentSeedsDiffer)
{
    FuzzOptions a, b;
    a.seed = 11;
    b.seed = 12;
    EXPECT_NE(enumerateFuzzConfigs(a), enumerateFuzzConfigs(b));
}

TEST(FuzzEnumerator, CoversValidAndInvalidConfigs)
{
    FuzzOptions opts;
    const std::vector<StudyConfig> configs =
        enumerateFuzzConfigs(opts);
    const auto invalid = std::count_if(
        configs.begin(), configs.end(),
        [](const StudyConfig &c) {
            return validateConfig(c).has_value();
        });
    EXPECT_GT(invalid, 0);
    EXPECT_GT(static_cast<long>(configs.size()) - invalid, 0);
}

// ---------------------------------------------------------------
// Differential runner.
// ---------------------------------------------------------------

TEST(DifferentialFuzz, CleanOnValidConfigAcrossThreadCounts)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        FuzzOptions opts;
        opts.threads = threads;
        const auto detail =
            checkConfigDifferential(tinyConfig(), opts);
        EXPECT_EQ(detail, std::nullopt) << threads << " threads";
    }
}

TEST(DifferentialFuzz, SmallSweepIsCleanAndThreadIndependent)
{
    FuzzOptions base;
    base.includeBoundary = false;
    base.randomConfigs = 6;

    std::optional<FuzzReport> first;
    for (unsigned threads : {1u, 2u, 8u}) {
        FuzzOptions opts = base;
        opts.threads = threads;
        const FuzzReport report = runDifferentialFuzz(opts);
        EXPECT_TRUE(report.clean()) << threads << " threads";
        EXPECT_EQ(report.configs.size(), 6u);
        if (!first) {
            first = report;
            continue;
        }
        // The whole report — config list, rejections, failure set —
        // must not depend on the thread count.
        EXPECT_EQ(report.configs, first->configs);
        ASSERT_EQ(report.rejected.size(), first->rejected.size());
        for (std::size_t i = 0; i < report.rejected.size(); ++i) {
            EXPECT_EQ(report.rejected[i].config,
                      first->rejected[i].config);
            EXPECT_EQ(report.rejected[i].error,
                      first->rejected[i].error);
        }
        EXPECT_EQ(report.cellsChecked, first->cellsChecked);
    }
}

/** A registry whose one mapping goes wrong beyond 10 elements. */
const MappingRegistry &
buggyRegistry()
{
    static const MappingRegistry reg = [] {
        MappingRegistry r;
        r.add(MachineId::Viram, KernelId::BeamSteering,
              [](const StudyConfig &cfg, const Workloads &) {
                  RunResult res;
                  res.machine = MachineId::Viram;
                  res.kernel = KernelId::BeamSteering;
                  res.cycles = cfg.beam.outputs();
                  res.validated = cfg.beam.elements <= 10;
                  return res;
              });
        return r;
    }();
    return reg;
}

TEST(DifferentialFuzz, FlagsAndMinimizesABuggyMapping)
{
    // The differential runner must flag the bad mapping, and the
    // minimizer must shrink the reproducer while keeping it failing
    // (elements stays > 10).
    const MappingRegistry &buggy = buggyRegistry();

    FuzzOptions opts;
    opts.includeBoundary = false;
    opts.randomConfigs = 0;
    opts.mappings = &buggy;
    opts.cells = {{MachineId::Viram, KernelId::BeamSteering}};

    StudyConfig cfg = tinyConfig();
    cfg.beam.elements = 160;

    const auto detail = checkConfigDifferential(cfg, opts);
    ASSERT_TRUE(detail.has_value());
    EXPECT_NE(detail->find("failed reference validation"),
              std::string::npos);

    const StudyConfig min = minimizeFailure(cfg, opts);
    EXPECT_GT(min.beam.elements, 10u);
    EXPECT_LT(min.beam.elements, 160u);
    EXPECT_EQ(min.beam.directions, 1u);
    EXPECT_TRUE(checkConfigDifferential(min, opts).has_value());
    EXPECT_EQ(validateConfig(min), std::nullopt);

    // The reproducer string names the hash so a failure can be
    // replayed exactly.
    EXPECT_NE(describeConfig(min).find("hash=0x"), std::string::npos);
}

TEST(DifferentialFuzz, ReportCarriesMinimizedFailuresWithHashes)
{
    FuzzOptions opts;
    opts.includeBoundary = false;
    opts.randomConfigs = 4;
    opts.mappings = &buggyRegistry();
    opts.cells = {{MachineId::Viram, KernelId::BeamSteering}};

    const FuzzReport report = runDifferentialFuzz(opts);
    EXPECT_FALSE(report.clean());
    for (const FuzzFailure &f : report.failures) {
        EXPECT_EQ(f.configHash, studyConfigHash(f.config));
        EXPECT_FALSE(f.detail.empty());
        // Minimization never shrinks past the point where the
        // failure disappears.
        EXPECT_GT(f.config.beam.elements, 10u);
    }
}

// ---------------------------------------------------------------
// Boundary regressions the sweep flushed out.
// ---------------------------------------------------------------

TEST(FuzzRegressions, RawBeamSteeringWithFewerElementsThanTiles)
{
    // elements < 16 leaves Raw tiles with nothing to do; the mapping
    // used to enqueue zero-word DMA segments for them, which the
    // machine never retires — the run hung forever. Completing at
    // all (validated, bit-identical serially and in parallel) is the
    // regression test.
    StudyConfig cfg = tinyConfig();
    cfg.beam.elements = 5;
    ASSERT_EQ(validateConfig(cfg), std::nullopt);

    FuzzOptions opts;
    opts.cells = {{MachineId::Raw, KernelId::BeamSteering}};
    EXPECT_EQ(checkConfigDifferential(cfg, opts), std::nullopt);
}

TEST(FuzzRegressions, SingleElementSingleBandConfigRunsEverywhere)
{
    StudyConfig cfg = tinyConfig();
    cfg.beam.elements = 1;
    cfg.beam.directions = 1;
    cfg.beam.dwells = 1;
    cfg.cslc.subBands = 1;
    cfg.cslc.samples = cfg.cslc.subBandLen;
    cfg.jammerBins = {7};
    ASSERT_EQ(validateConfig(cfg), std::nullopt);

    FuzzOptions opts;
    EXPECT_EQ(checkConfigDifferential(cfg, opts), std::nullopt);
}

} // namespace
} // namespace triarch::study
