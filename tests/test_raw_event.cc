/**
 * @file
 * Differential tests for the event-driven Raw stepper. The event
 * scheduler (wake times, bulk stall credit, tile-local instruction
 * batching) is an optimization of the reference cycle-by-cycle
 * interpreter, never a semantic change: every program and every
 * study-level Raw cell must produce bit-identical cycle counts,
 * stall tallies, and memory contents under both steppers, serially
 * and at every thread count.
 */

#include <gtest/gtest.h>

#include <functional>

#include "raw/assembler.hh"
#include "raw/machine.hh"
#include "sim/bitutil.hh"
#include "study/fuzz.hh"
#include "study/parallel.hh"

namespace triarch::raw
{
namespace
{

/**
 * Build the same workload on a reference-stepped and an
 * event-stepped machine, run both, and require every observable —
 * cycle count, scalar stats, the six per-tile-cycle tallies, and
 * per-tile instruction/idle figures — to match exactly.
 */
void
expectSteppersAgree(const std::function<void(RawMachine &)> &setup,
                    RawConfig base = RawConfig{})
{
    RawConfig refCfg = base;
    refCfg.stepper = RawStepper::Reference;
    RawConfig evtCfg = base;
    evtCfg.stepper = RawStepper::Event;

    RawMachine ref(refCfg), evt(evtCfg);
    setup(ref);
    setup(evt);
    const Cycles refCycles = ref.run();
    const Cycles evtCycles = evt.run();
    EXPECT_EQ(refCycles, evtCycles);

    EXPECT_EQ(ref.instructions(), evt.instructions());
    EXPECT_EQ(ref.netStalls(), evt.netStalls());
    EXPECT_EQ(ref.depStalls(), evt.depStalls());
    EXPECT_EQ(ref.cacheStallCycles(), evt.cacheStallCycles());
    EXPECT_EQ(ref.loadStores(), evt.loadStores());
    EXPECT_EQ(ref.fpOps(), evt.fpOps());

    const auto a = ref.stallTallies();
    const auto b = evt.stallTallies();
    EXPECT_EQ(a.busy, b.busy);
    EXPECT_EQ(a.dep, b.dep);
    EXPECT_EQ(a.cache, b.cache);
    EXPECT_EQ(a.net, b.net);
    EXPECT_EQ(a.dma, b.dma);
    EXPECT_EQ(a.idle, b.idle);

    for (unsigned t = 0; t < 16; ++t) {
        EXPECT_EQ(ref.tileInstructions(t), evt.tileInstructions(t))
            << "tile " << t;
        EXPECT_EQ(ref.tileIdleAfterHalt(t), evt.tileIdleAfterHalt(t))
            << "tile " << t;
    }
}

TEST(RawEventDifferential, DependentLatencyChain)
{
    // Pure tile-local code: exercises the batch executor's dep-gap
    // accounting (tcDep bumped per stall event, not per call).
    expectSteppersAgree([](RawMachine &m) {
        Assembler as;
        as.li(1, static_cast<std::int32_t>(floatToWord(1.0f)));
        for (int i = 0; i < 40; ++i)
            as.fmul(1, 1, 1);
        for (int i = 0; i < 40; ++i)
            as.fmul(2 + (i % 8), 1, 1);
        as.halt();
        m.setProgram(0, as.finish());
    });
}

TEST(RawEventDifferential, StaticNetworkPingPong)
{
    // Blocking $csti/$csto between distant tiles: the event stepper
    // must resolve unknown wake times via FIFO-push notification.
    expectSteppersAgree([](RawMachine &m) {
        m.setRoute(0, 15);
        m.setRoute(15, 0);
        Assembler t0;
        t0.li(1, 5);
        Label loop = t0.label();
        t0.bind(loop);
        t0.move(regCsto, 1);
        t0.move(2, regCsti);
        t0.addi(1, 1, -1);
        t0.bne(1, 0, loop);
        t0.halt();
        m.setProgram(0, t0.finish());
        Assembler t15;
        t15.li(3, 5);
        Label echo = t15.label();
        t15.bind(echo);
        t15.move(regCsto, regCsti);
        t15.addi(3, 3, -1);
        t15.bne(3, 0, echo);
        t15.halt();
        m.setProgram(15, t15.finish());
    });
}

TEST(RawEventDifferential, FullFifoBackpressure)
{
    // A fast sender against a slow consumer: the sender re-polls a
    // full FIFO every cycle, the exact path of the net-stall
    // re-count fix.
    expectSteppersAgree([](RawMachine &m) {
        m.setRoute(0, 1);
        Assembler fast;
        fast.li(1, 64);
        Label send = fast.label();
        fast.bind(send);
        fast.move(regCsto, 1);
        fast.addi(1, 1, -1);
        fast.bne(1, 0, send);
        fast.halt();
        m.setProgram(0, fast.finish());
        Assembler slow;
        slow.li(1, static_cast<std::int32_t>(floatToWord(2.0f)));
        slow.li(2, 64);
        Label eat = slow.label();
        slow.bind(eat);
        slow.move(3, regCsti);
        slow.fmul(4, 1, 1);     // latency padding between pops
        slow.fmul(4, 4, 4);
        slow.addi(2, 2, -1);
        slow.bne(2, 0, eat);
        slow.halt();
        m.setProgram(1, slow.finish());
    });
}

TEST(RawEventDifferential, DmaRoundTripWithRowMisses)
{
    // DMA ports on both sides of a tile, long enough to cross DRAM
    // row boundaries (the per-port wake path).
    expectSteppersAgree([](RawMachine &m) {
        const Addr in = m.allocGlobal(4096, "in");
        const Addr out = m.allocGlobal(4096, "out");
        std::vector<Word> data(1024);
        for (unsigned i = 0; i < 1024; ++i)
            data[i] = i * 7;
        m.pokeGlobal(in, data);
        m.dmaIn(5, 5, in, 1024);
        m.dmaOut(5, out, 1024);
        m.setRoute(5, portEndpoint(5));
        Assembler as;
        as.li(2, 1024);
        Label loop = as.label();
        as.bind(loop);
        as.add(regCsto, regCsti, 0);
        as.addi(2, 2, -1);
        as.bne(2, 0, loop);
        as.halt();
        m.setProgram(5, as.finish());
    });
}

TEST(RawEventDifferential, CachedGlobalAccesses)
{
    // Global lw/sw through the per-tile cache: the batch executor
    // must hand these back to the per-cycle path untouched.
    expectSteppersAgree([](RawMachine &m) {
        const Addr buf = m.allocGlobal(16384, "buf");
        std::vector<Word> data(4096);
        for (unsigned i = 0; i < 4096; ++i)
            data[i] = i;
        m.pokeGlobal(buf, data);
        Assembler as;
        as.li(1, static_cast<std::int32_t>(buf));
        as.li(2, 2048);
        as.li(3, 0);
        Label loop = as.label();
        as.bind(loop);
        as.lw(4, 1, 0);
        as.add(3, 3, 4);
        as.sw(3, 1, 0);
        as.addi(1, 1, 4);
        as.addi(2, 2, -1);
        as.bne(2, 0, loop);
        as.halt();
        m.setProgram(0, as.finish());
    });
}

TEST(RawEventDifferential, DynamicNetworkGather)
{
    // dsend/drecv with unknown receiver wake times and send
    // occupancy stalls.
    expectSteppersAgree([](RawMachine &m) {
        for (unsigned t = 1; t < 16; ++t) {
            Assembler as;
            as.li(1, 0);
            for (int i = 0; i < 4; ++i) {
                as.li(2, static_cast<std::int32_t>(t * 10 + i));
                as.dsend(1, 2);
            }
            as.halt();
            m.setProgram(t, as.finish());
        }
        Assembler hub;
        hub.li(1, 0);
        hub.li(2, 60);
        Label loop = hub.label();
        hub.bind(loop);
        hub.drecv(3);
        hub.add(1, 1, 3);
        hub.addi(2, 2, -1);
        hub.bne(2, 0, loop);
        hub.sw(1, 0, 0);
        hub.halt();
        m.setProgram(0, hub.finish());
    });
}

TEST(RawEventDifferential, MaxCyclesDeadlockIsFatalInBothModes)
{
    // The skip-ahead must not jump past the runaway guard.
    for (const RawStepper s :
         {RawStepper::Reference, RawStepper::Event}) {
        RawConfig cfg;
        cfg.maxCycles = 5000;
        cfg.stepper = s;
        EXPECT_DEATH(
            {
                RawMachine m(cfg);
                Assembler as;
                as.move(1, regCsti);
                as.halt();
                m.setProgram(0, as.finish());
                m.run();
            },
            "deadlock");
    }
}

} // namespace
} // namespace triarch::raw

// Study-level: the fuzz sweep's boundary configs, run on every Raw
// cell under both steppers and at several thread counts.
namespace triarch::study
{
namespace
{

/** RAII override of the process-wide default stepper. */
class StepperOverride
{
  public:
    explicit StepperOverride(raw::RawStepper s)
        : saved(raw::defaultRawStepper())
    {
        raw::setDefaultRawStepper(s);
    }
    ~StepperOverride() { raw::setDefaultRawStepper(saved); }

  private:
    raw::RawStepper saved;
};

TEST(RawEventDifferential, BoundaryConfigsAcrossThreadCounts)
{
    FuzzOptions opts;
    opts.randomConfigs = 0;     // the hand-written boundary set only
    const std::vector<Cell> rawCells = {
        {MachineId::Raw, KernelId::CornerTurn},
        {MachineId::Raw, KernelId::Cslc},
        {MachineId::Raw, KernelId::BeamSteering},
    };

    unsigned checked = 0;
    for (const StudyConfig &cfg : enumerateFuzzConfigs(opts)) {
        if (validateConfig(cfg))
            continue;           // invalid-on-purpose boundary config
        if (checked == 8)
            break;              // keep the suite seconds-fast
        ++checked;
        SCOPED_TRACE(describeConfig(cfg));

        std::vector<RunResult> expect;
        {
            StepperOverride guard(raw::RawStepper::Reference);
            ParallelRunner runner(cfg, 1, nullptr,
                                  ParallelRunner::noCache());
            expect = runner.runCells(rawCells);
        }
        StepperOverride guard(raw::RawStepper::Event);
        for (const unsigned threads : {1u, 2u, 8u}) {
            ParallelRunner runner(cfg, threads, nullptr,
                                  ParallelRunner::noCache());
            const std::vector<RunResult> got =
                runner.runCells(rawCells);
            ASSERT_EQ(got.size(), expect.size());
            for (std::size_t i = 0; i < expect.size(); ++i) {
                EXPECT_EQ(got[i], expect[i])
                    << threads << " threads, cell " << i;
            }
        }
    }
    EXPECT_GE(checked, 4u) << "boundary set shrank unexpectedly";
}

} // namespace
} // namespace triarch::study
