/**
 * @file
 * Regression tests for the shared bench CLI harness and the id
 * lookup tables: numeric flags reject negative, overflowing, and
 * truncating values instead of silently wrapping; value-less flags
 * reject inline values; the trace file is written even when the
 * bench body fails; and out-of-range KernelId/MachineId lookups
 * panic with the numeric value instead of reading past the static
 * name arrays.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_main.hh"
#include "study/experiment.hh"
#include "study/machine_info.hh"

namespace triarch
{
namespace
{

/** Run benchMain over the given args with a trivial passing body. */
int
runBench(std::vector<std::string> args,
         bench::BenchBody body = [](bench::BenchContext &) {
             return 0;
         })
{
    std::vector<char *> argv;
    args.insert(args.begin(), "test_bench");
    argv.reserve(args.size());
    for (std::string &a : args)
        argv.push_back(a.data());
    return bench::benchMain(static_cast<int>(argv.size()),
                            argv.data(), "test bench", body);
}

// ---------------------------------------------------------------
// Numeric flag parsing.
// ---------------------------------------------------------------

TEST(BenchCliNumbers, RejectsNegativeThreads)
{
    // Pre-fix, strtoull wrapped "-1" to 2^64-1 and the cast
    // truncated it to 4294967295 worker threads.
    EXPECT_EXIT(runBench({"--threads", "-1"}),
                testing::ExitedWithCode(2),
                "--threads needs a non-negative number");
}

TEST(BenchCliNumbers, RejectsOverflowingValues)
{
    // > 2^64: strtoull reports ERANGE, which was ignored pre-fix.
    EXPECT_EXIT(runBench({"--seed", "99999999999999999999"}),
                testing::ExitedWithCode(2), "out of range");
    // Fits in 64 bits but not in unsigned --threads.
    EXPECT_EXIT(runBench({"--threads", "5000000000"}),
                testing::ExitedWithCode(2), "out of range");
}

TEST(BenchCliNumbers, RejectsNonNumericValues)
{
    EXPECT_EXIT(runBench({"--threads", "four"}),
                testing::ExitedWithCode(2),
                "needs a non-negative number");
    EXPECT_EXIT(runBench({"--threads", "7x"}),
                testing::ExitedWithCode(2),
                "needs a non-negative number");
    EXPECT_EXIT(runBench({"--threads", "+3"}),
                testing::ExitedWithCode(2),
                "needs a non-negative number");
}

TEST(BenchCliNumbers, ZeroThreadsMeansHardwareConcurrency)
{
    // 0 is the documented "use hardware concurrency" value; it must
    // parse and reach the body unchanged.
    EXPECT_EQ(runBench({"--threads", "0"},
                       [](bench::BenchContext &ctx) {
                           return ctx.options().threads == 0 ? 0 : 9;
                       }),
              0);
}

TEST(BenchCliNumbers, AcceptsInlineNumericValues)
{
    EXPECT_EQ(runBench({"--threads=3", "--seed=17"},
                       [](bench::BenchContext &ctx) {
                           return ctx.options().threads == 3
                                          && ctx.options().seed == 17
                                      ? 0
                                      : 9;
                       }),
              0);
}

// ---------------------------------------------------------------
// Inline values on value-less flags.
// ---------------------------------------------------------------

TEST(BenchCliInline, RejectsInlineValueOnCsv)
{
    // Pre-fix, "--csv=yes" was silently treated as bare "--csv".
    EXPECT_EXIT(runBench({"--csv=yes"}), testing::ExitedWithCode(2),
                "--csv does not take a value");
}

TEST(BenchCliInline, RejectsInlineValueOnHelp)
{
    EXPECT_EXIT(runBench({"--help=x"}), testing::ExitedWithCode(2),
                "--help does not take a value");
}

TEST(BenchCliInline, BareCsvStillWorks)
{
    EXPECT_EQ(runBench({"--csv"},
                       [](bench::BenchContext &ctx) {
                           return ctx.options().csv ? 0 : 9;
                       }),
              0);
}

// ---------------------------------------------------------------
// Trace written on failure.
// ---------------------------------------------------------------

TEST(BenchTrace, WrittenEvenWhenBodyFails)
{
    const std::string path =
        testing::TempDir() + "/triarch_failed_trace.json";
    std::remove(path.c_str());

    testing::internal::CaptureStdout();
    const int rc = runBench({"--trace", path},
                            [](bench::BenchContext &) { return 3; });
    const std::string out = testing::internal::GetCapturedStdout();

    EXPECT_EQ(rc, 3);
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "trace file missing: " << path;
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("traceEvents"), std::string::npos);
    // The harness notes the failure next to the trace path.
    EXPECT_NE(out.find("trace written to " + path),
              std::string::npos);
    EXPECT_NE(out.find("failed with exit code 3"),
              std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Out-of-range id lookups.
// ---------------------------------------------------------------

TEST(IdLookups, KernelNamePanicsOutOfRange)
{
    EXPECT_DEATH(study::kernelName(static_cast<study::KernelId>(7)),
                 "KernelId out of range: 7");
    EXPECT_DEATH(study::kernelToken(static_cast<study::KernelId>(99)),
                 "KernelId out of range: 99");
}

TEST(IdLookups, MachineTokenPanicsOutOfRange)
{
    EXPECT_DEATH(
        study::machineToken(static_cast<study::MachineId>(42)),
        "MachineId out of range: 42");
}

TEST(IdLookups, ValidIdsStillResolve)
{
    EXPECT_EQ(study::kernelToken(study::KernelId::BeamSteering), "bs");
    EXPECT_EQ(study::kernelName(study::KernelId::Cslc), "CSLC");
    EXPECT_EQ(study::machineToken(study::MachineId::Raw), "raw");
}

} // namespace
} // namespace triarch
