/**
 * @file
 * Tests for the cycle-accounting profiler and the perf-regression
 * gate built on it: the exact-partition invariant of CycleAccount /
 * CycleTimeline, the per-cell breakdowns of every machine x kernel
 * mapping (categories sum exactly to the cell's cycles), their
 * bit-identical determinism across thread counts, and the
 * triarch.bench.v1 report round-trip plus bench-diff pass/fail
 * decisions on perturbed baselines.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "raw/assembler.hh"
#include "raw/machine.hh"
#include "sim/cycle_account.hh"
#include "study/bench_report.hh"
#include "study/parallel.hh"

namespace triarch::study
{
namespace
{

using stats::CycleAccount;
using stats::CycleBreakdown;
using stats::CycleCategory;
using stats::CycleTimeline;

/** The reduced workload from test_study.cc: fast but exercises all
 *  fifteen cells end to end. */
StudyConfig
smallConfig()
{
    StudyConfig cfg;
    cfg.matrixSize = 128;
    cfg.cslc.subBands = 8;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    cfg.beam.elements = 256;
    cfg.beam.dwells = 2;
    cfg.jammerBins = {64, 200};
    return cfg;
}

// ---------------------------------------------------------------
// CycleAccount: largest-remainder integerization and the
// over/under-attribution rules.
// ---------------------------------------------------------------

TEST(CycleAccount, ExactChargesPassThrough)
{
    CycleAccount account;
    account.charge(CycleCategory::Compute, 60.0);
    account.charge(CycleCategory::DramDma, 40.0);
    const CycleBreakdown b =
        account.finalize(100, CycleCategory::NetworkSync);
    EXPECT_EQ(b[CycleCategory::Compute], 60u);
    EXPECT_EQ(b[CycleCategory::DramDma], 40u);
    EXPECT_EQ(b[CycleCategory::NetworkSync], 0u);
    EXPECT_EQ(b.categorySum(), b.total);
    EXPECT_EQ(b.total, 100u);
}

TEST(CycleAccount, UnderchargeGoesToResidual)
{
    CycleAccount account;
    account.charge(CycleCategory::CacheStall, 30.0);
    const CycleBreakdown b =
        account.finalize(100, CycleCategory::Compute);
    EXPECT_EQ(b[CycleCategory::CacheStall], 30u);
    EXPECT_EQ(b[CycleCategory::Compute], 70u);
    EXPECT_EQ(b.categorySum(), 100u);
}

TEST(CycleAccount, FractionalChargesIntegerizeByLargestRemainder)
{
    // 33.5 + 33.4 + 33.1 = 100: floors (33,33,33) leave one cycle,
    // which must go to the largest fractional part (Compute, .5).
    CycleAccount account;
    account.charge(CycleCategory::Compute, 33.5);
    account.charge(CycleCategory::CacheStall, 33.4);
    account.charge(CycleCategory::DramDma, 33.1);
    const CycleBreakdown b =
        account.finalize(100, CycleCategory::NetworkSync);
    EXPECT_EQ(b[CycleCategory::Compute], 34u);
    EXPECT_EQ(b[CycleCategory::CacheStall], 33u);
    EXPECT_EQ(b[CycleCategory::DramDma], 33u);
    EXPECT_EQ(b.categorySum(), 100u);
}

TEST(CycleAccountDeath, OverchargePanics)
{
    CycleAccount account;
    account.charge(CycleCategory::Compute, 150.0);
    EXPECT_DEATH(account.finalize(100, CycleCategory::Compute),
                 "over-attributed");
}

TEST(CycleAccount, FinalizeScaledPreservesProportions)
{
    // The Raw CSLC path: measured at 200 cycles, reported at 100.
    CycleAccount account;
    account.charge(CycleCategory::Compute, 150.0);
    account.charge(CycleCategory::NetworkSync, 50.0);
    const CycleBreakdown b = account.finalizeScaled(100);
    EXPECT_EQ(b.total, 100u);
    EXPECT_EQ(b.categorySum(), 100u);
    EXPECT_EQ(b[CycleCategory::Compute], 75u);
    EXPECT_EQ(b[CycleCategory::NetworkSync], 25u);
}

// ---------------------------------------------------------------
// CycleTimeline: priority resolution of overlapped intervals.
// ---------------------------------------------------------------

TEST(CycleTimeline, OverlapResolvesToHighestPriority)
{
    // Compute [10, 20) overlaps DramDma [15, 30): the overlapped
    // cycles count as compute (declaration order = priority), the
    // uncovered head/tail go to the gap category.
    CycleTimeline timeline;
    timeline.add(CycleCategory::DramDma, 15, 30);
    timeline.add(CycleCategory::Compute, 10, 20);
    const CycleBreakdown b =
        timeline.resolve(40, CycleCategory::NetworkSync);
    EXPECT_EQ(b[CycleCategory::Compute], 10u);
    EXPECT_EQ(b[CycleCategory::DramDma], 10u);
    EXPECT_EQ(b[CycleCategory::NetworkSync], 20u);
    EXPECT_EQ(b.categorySum(), 40u);
}

TEST(CycleTimeline, IntervalsPastTotalAreClipped)
{
    CycleTimeline timeline;
    timeline.add(CycleCategory::Compute, 5, 100);
    const CycleBreakdown b =
        timeline.resolve(10, CycleCategory::NetworkSync);
    EXPECT_EQ(b[CycleCategory::Compute], 5u);
    EXPECT_EQ(b[CycleCategory::NetworkSync], 5u);
    EXPECT_EQ(b.categorySum(), 10u);
}

TEST(CycleTimeline, EmptyTimelineIsAllGap)
{
    CycleTimeline timeline;
    const CycleBreakdown b =
        timeline.resolve(7, CycleCategory::SetupReadback);
    EXPECT_EQ(b[CycleCategory::SetupReadback], 7u);
    EXPECT_EQ(b.categorySum(), 7u);
}

// ---------------------------------------------------------------
// The profiler invariant across every machine x kernel cell.
// ---------------------------------------------------------------

TEST(BreakdownInvariant, CategoriesSumToTotalForEveryCell)
{
    Runner runner(smallConfig());
    const std::vector<RunResult> results = runner.runAll();
    ASSERT_EQ(results.size(), 15u);
    for (const RunResult &r : results) {
        SCOPED_TRACE(machineName(r.machine) + " / "
                     + kernelName(r.kernel));
        EXPECT_EQ(r.breakdown.total, r.cycles);
        EXPECT_EQ(r.breakdown.categorySum(), r.cycles);
        // A cell that runs at all must attribute its cycles to
        // something.
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(BreakdownInvariant, StreamModeHasNoCacheStalls)
{
    // Imagine has no caches: all memory time is stream transfers,
    // so cache_stall is structurally zero (the paper's stream-mode
    // argument, Section 4.1). VIRAM's on-chip DRAM likewise.
    Runner runner(smallConfig());
    for (KernelId kernel : allKernels()) {
        const RunResult imagine =
            runner.run(MachineId::Imagine, kernel);
        EXPECT_EQ(imagine.breakdown[CycleCategory::CacheStall], 0u)
            << kernelName(kernel);
        const RunResult viram = runner.run(MachineId::Viram, kernel);
        EXPECT_EQ(viram.breakdown[CycleCategory::CacheStall], 0u)
            << kernelName(kernel);
    }
}

TEST(BreakdownInvariant, BitIdenticalAcrossThreadCounts)
{
    const StudyConfig cfg = smallConfig();
    Runner serial(cfg);
    const std::vector<RunResult> expect = serial.runAll();

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner par(cfg, threads, nullptr,
                           ParallelRunner::noCache());
        const std::vector<RunResult> got = par.runAll();
        ASSERT_EQ(got.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got[i].breakdown, expect[i].breakdown)
                << threads << " threads, cell " << i;
        }
    }
}

// ---------------------------------------------------------------
// The triarch.bench.v1 report: build, write, parse round-trip.
// ---------------------------------------------------------------

/** Report for the small config, computed once (the suite's cells
 *  are deterministic, so sharing is safe). */
const BenchReport &
smallReport()
{
    static const BenchReport report = [] {
        const StudyConfig cfg = smallConfig();
        Runner runner(cfg);
        return buildBenchReport(cfg, runner.runAll());
    }();
    return report;
}

TEST(BenchReport, RoundTripsThroughJson)
{
    const BenchReport &report = smallReport();
    EXPECT_EQ(report.schema, benchSchema());
    EXPECT_EQ(report.cells.size(), 15u);

    std::ostringstream os;
    writeBenchReportJson(report, os);
    std::string error;
    const auto parsed = parseBenchReportJson(os.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(*parsed, report);
}

TEST(BenchReport, ParserRejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(parseBenchReportJson("", &error));
    EXPECT_FALSE(parseBenchReportJson("{]", &error));
    EXPECT_FALSE(parseBenchReportJson("{}", &error));

    // Wrong schema.
    EXPECT_FALSE(parseBenchReportJson(
        R"({"schema": "triarch.bench.v0", "config_hash": "x",
            "seed": 1, "cells": []})",
        &error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;

    // A breakdown that does not sum to the cycle count must be
    // rejected at the parse boundary: it violates the document's
    // core invariant.
    EXPECT_FALSE(parseBenchReportJson(
        R"({"schema": "triarch.bench.v1", "config_hash": "x",
            "seed": 1, "cells": [
              {"machine": "ppc", "kernel": "ct", "cycles": 100,
               "validated": true,
               "breakdown": {"compute": 50, "cache_stall": 0,
                             "dram_dma": 0, "network_sync": 0,
                             "setup_readback": 0}}]})",
        &error));
    EXPECT_NE(error.find("sums to 50"), std::string::npos) << error;

    // Unknown machine token.
    EXPECT_FALSE(parseBenchReportJson(
        R"({"schema": "triarch.bench.v1", "config_hash": "x",
            "seed": 1, "cells": [
              {"machine": "cray", "kernel": "ct", "cycles": 1,
               "validated": true,
               "breakdown": {"compute": 1, "cache_stall": 0,
                             "dram_dma": 0, "network_sync": 0,
                             "setup_readback": 0}}]})",
        &error));
    EXPECT_NE(error.find("cray"), std::string::npos) << error;
}

// ---------------------------------------------------------------
// The diff gate: identical reports pass; perturbed baselines fail
// with named cells.
// ---------------------------------------------------------------

TEST(BenchDiff, IdenticalReportsPass)
{
    const BenchReport &report = smallReport();
    const BenchDiffResult diff = diffBenchReports(report, report);
    EXPECT_TRUE(diff.ok());
    EXPECT_EQ(diff.cellsCompared, 15u);
}

TEST(BenchDiff, PerturbedTotalFails)
{
    const BenchReport &fresh = smallReport();
    BenchReport baseline = fresh;
    // Drift one cell by 10% — far past the 0.5% default tolerance.
    // The breakdown moves with the total so the perturbed document
    // still satisfies the partition invariant.
    BenchCell &cell = baseline.cells[0];
    const std::uint64_t delta = cell.cycles / 10;
    ASSERT_GT(delta, 0u);
    cell.cycles += delta;
    cell.breakdown.total += delta;
    cell.breakdown.cycles[0] += delta;

    const BenchDiffResult diff = diffBenchReports(baseline, fresh);
    EXPECT_FALSE(diff.ok());
    // Both the total and the compute category drifted.
    EXPECT_GE(diff.failures.size(), 2u);
    EXPECT_NE(diff.failures[0].find("cycles"), std::string::npos);
}

TEST(BenchDiff, PerturbationWithinToleranceVanishes)
{
    const BenchReport &fresh = smallReport();
    BenchReport baseline = fresh;
    BenchCell &cell = baseline.cells[0];
    // 0.1% drift, checked against a 0.5% tolerance.
    const std::uint64_t delta = cell.cycles / 1000;
    cell.cycles += delta;
    cell.breakdown.total += delta;
    cell.breakdown.cycles[0] += delta;

    EXPECT_TRUE(diffBenchReports(baseline, fresh).ok());

    BenchDiffOptions tight;
    tight.tolerance = 0.0001;
    EXPECT_FALSE(diffBenchReports(baseline, fresh, tight).ok());
}

TEST(BenchDiff, CategoryShiftAtConstantTotalFails)
{
    // The profiler's whole point: moving cycles between categories
    // is a regression even when the total is unchanged.
    const BenchReport &fresh = smallReport();
    BenchReport baseline = fresh;
    BenchCell &cell = baseline.cells[0];
    const std::uint64_t shift = cell.cycles / 10;
    ASSERT_GE(cell.breakdown.cycles[0], shift);
    cell.breakdown.cycles[0] -= shift;
    cell.breakdown.cycles[1] += shift;

    const BenchDiffResult diff = diffBenchReports(baseline, fresh);
    EXPECT_FALSE(diff.ok());
}

TEST(BenchDiff, ConfigHashMismatchFails)
{
    const BenchReport &fresh = smallReport();
    BenchReport baseline = fresh;
    baseline.configHash = "deadbeef";
    const BenchDiffResult diff = diffBenchReports(baseline, fresh);
    ASSERT_FALSE(diff.ok());
    EXPECT_NE(diff.failures[0].find("config hash"), std::string::npos);
}

TEST(BenchDiff, MissingCellFails)
{
    const BenchReport &fresh = smallReport();
    BenchReport truncated = fresh;
    truncated.cells.pop_back();

    // Fresh report lost a cell the baseline has.
    EXPECT_FALSE(diffBenchReports(fresh, truncated).ok());
    // Fresh report grew a cell the baseline lacks.
    EXPECT_FALSE(diffBenchReports(truncated, fresh).ok());
}

TEST(BenchDiff, InvalidatedCellFails)
{
    const BenchReport &baseline = smallReport();
    BenchReport fresh = baseline;
    fresh.cells[3].validated = false;
    const BenchDiffResult diff = diffBenchReports(baseline, fresh);
    ASSERT_FALSE(diff.ok());
    EXPECT_NE(diff.failures[0].find("validate"), std::string::npos);
}

TEST(BenchDiff, PaperTargetBandCatchesGrossDrift)
{
    // The small config is NOT the paper's workload, so judge the
    // band logic on synthetic data anchored at the paper's values.
    BenchReport report;
    report.schema = benchSchema();
    BenchCell cell;
    cell.machine = MachineId::Viram;
    cell.kernel = KernelId::Cslc;
    cell.validated = true;
    cell.cycles = static_cast<Cycles>(
        paperTable3Kcycles(cell.machine, cell.kernel) * 1000.0);
    cell.breakdown.total = cell.cycles;
    cell.breakdown.cycles[0] = cell.cycles;
    report.cells.push_back(cell);
    EXPECT_TRUE(checkPaperTargets(report, 2.0).ok());

    report.cells[0].cycles *= 3;
    report.cells[0].breakdown.total = report.cells[0].cycles;
    report.cells[0].breakdown.cycles[0] = report.cells[0].cycles;
    EXPECT_FALSE(checkPaperTargets(report, 2.0).ok());
}

// ---------------------------------------------------------------
// The optional host section: round-trip, absence is byte-identical,
// and the advisory/gated host-time comparison.
// ---------------------------------------------------------------

/** A small synthetic host section over two cells. */
HostSection
fakeHostSection()
{
    HostSection host;
    host.warmup = 1;
    host.repetitions = 5;
    host.pinned = true;
    host.cellsPerSec = 12.5;
    host.cells.push_back(HostCellTiming{
        MachineId::Viram, KernelId::CornerTurn, 4.0e7, 4.5e7, 3.9e7,
        2.0e5});
    host.cells.push_back(HostCellTiming{
        MachineId::Raw, KernelId::BeamSteering, 8.0e7, 9.0e7, 7.5e7,
        5.0e5});
    return host;
}

TEST(BenchReportHost, SectionRoundTripsAndAbsenceIsByteIdentical)
{
    const BenchReport &bare = smallReport();
    std::ostringstream withoutHost;
    writeBenchReportJson(bare, withoutHost);
    EXPECT_EQ(withoutHost.str().find("\"host\""), std::string::npos)
        << "no host flags, no host key";

    BenchReport report = bare;
    report.host = fakeHostSection();
    std::ostringstream os;
    writeBenchReportJson(report, os);
    std::string error;
    const auto parsed = parseBenchReportJson(os.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(*parsed, report);
    ASSERT_TRUE(parsed->host.has_value());
    const HostCellTiming *cell =
        parsed->host->find(MachineId::Viram, KernelId::CornerTurn);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->medianNs, 4.0e7);
    EXPECT_EQ(parsed->host->find(MachineId::Imagine, KernelId::Cslc),
              nullptr);
}

TEST(BenchReportHost, ParserRejectsMalformedHostSections)
{
    const auto rejects = [](const std::string &hostJson,
                            const std::string &substr) {
        const std::string doc =
            R"({"schema": "triarch.bench.v1", "config_hash": "x",
                "seed": 1, "cells": [], "host": )"
            + hostJson + "}";
        std::string error;
        EXPECT_FALSE(parseBenchReportJson(doc, &error)) << hostJson;
        EXPECT_NE(error.find(substr), std::string::npos)
            << "error was: " << error;
    };

    rejects("[]", "host");
    rejects(R"({"repetitions": 5})", "warmup");
    rejects(R"({"warmup": 1, "repetitions": 5, "pinned": false,
                "cells_per_sec": 1.0, "cells": [
                  {"machine": "cray", "kernel": "ct", "median_ns": 1,
                   "p95_ns": 1, "min_ns": 1, "stddev_ns": 0}]})",
            "cray");
    rejects(R"({"warmup": 1, "repetitions": 5, "pinned": false,
                "cells_per_sec": 1.0, "cells": [
                  {"machine": "viram", "kernel": "ct",
                   "p95_ns": 1, "min_ns": 1, "stddev_ns": 0}]})",
            "timing");
}

TEST(BenchDiffHost, AdvisoryModeNeverFails)
{
    BenchReport baseline = smallReport();
    BenchReport fresh = baseline;
    baseline.host = fakeHostSection();
    // Fresh host time 10x the baseline: advisory mode reports it but
    // stays OK; only --host-gate turns it into a failure.
    fresh.host = fakeHostSection();
    for (HostCellTiming &cell : fresh.host->cells)
        cell.medianNs *= 10.0;

    std::vector<std::string> advisory;
    const BenchDiffResult diff =
        diffHostSections(baseline, fresh, 0.0, &advisory);
    EXPECT_TRUE(diff.ok());
    EXPECT_FALSE(advisory.empty());
}

TEST(BenchDiffHost, GateFailsOnRegressionAndPassesWithin)
{
    BenchReport baseline = smallReport();
    baseline.host = fakeHostSection();
    BenchReport fresh = baseline;

    // Identical host sections pass any gate.
    EXPECT_TRUE(diffHostSections(baseline, fresh, 1.5).ok());

    // 2x slower medians fail a 1.5x gate but pass a 3x gate.
    for (HostCellTiming &cell : fresh.host->cells)
        cell.medianNs *= 2.0;
    const BenchDiffResult tight =
        diffHostSections(baseline, fresh, 1.5);
    EXPECT_FALSE(tight.ok());
    EXPECT_FALSE(tight.failures.empty());
    EXPECT_TRUE(diffHostSections(baseline, fresh, 3.0).ok());

    // A gated run with no fresh host section is a failure, not a
    // silent pass.
    fresh.host.reset();
    EXPECT_FALSE(diffHostSections(baseline, fresh, 1.5).ok());
}

} // namespace
} // namespace triarch::study

// Re-opened for the Raw stall-tally reconciliation: the net_stalls
// scalar counts one per stalled tile-cycle, so it must equal the
// network + DMA rows of the per-tile-cycle tally partition exactly.
// (It used to undercount Dsend re-stall cycles by bumping once per
// stall *event*.)
namespace triarch::study
{
namespace
{

using raw::Assembler;
using raw::Label;
using raw::RawMachine;
using raw::regCsti;
using raw::regCsto;

TEST(RawStallTallies, NetStallsEqualNetPlusDmaTallyRows)
{
    // A deliberately contended workload: DMA-fed FIFO waits, static
    // network backpressure, and dynamic sends that re-stall on
    // occupancy while the hub drains slowly.
    RawMachine m;
    const Addr in = m.allocGlobal(2048, "in");
    std::vector<Word> data(512);
    for (unsigned i = 0; i < 512; ++i)
        data[i] = i;
    m.pokeGlobal(in, data);
    m.dmaIn(2, 2, in, 512);

    Assembler consumer;         // tile 2: drains the DMA stream
    consumer.li(2, 512);
    Label drain = consumer.label();
    consumer.bind(drain);
    consumer.move(1, regCsti);
    consumer.addi(2, 2, -1);
    consumer.bne(2, 0, drain);
    consumer.halt();
    m.setProgram(2, consumer.finish());

    for (unsigned t : {4u, 5u, 6u, 7u}) {
        Assembler spam;         // dsend floods toward tile 0
        spam.li(1, 0);
        for (int i = 0; i < 16; ++i) {
            spam.li(2, static_cast<std::int32_t>(t + i));
            spam.dsend(1, 2);
        }
        spam.halt();
        m.setProgram(t, spam.finish());
    }
    Assembler hub;              // tile 0: slow receiver
    hub.li(1, 0);
    hub.li(2, 64);
    Label loop = hub.label();
    hub.bind(loop);
    hub.drecv(3);
    hub.add(1, 1, 3);
    hub.add(1, 1, 1);
    hub.addi(2, 2, -1);
    hub.bne(2, 0, loop);
    hub.halt();
    m.setProgram(0, hub.finish());

    const Cycles cycles = m.run();
    const auto t = m.stallTallies();

    // Every tile is in exactly one state each cycle.
    EXPECT_EQ(t.busy + t.dep + t.cache + t.net + t.dma + t.idle,
              16u * cycles);
    // The busy row is precisely the retired-instruction count.
    EXPECT_EQ(t.busy, m.instructions());
    // The scalar counts per stalled cycle (including Dsend
    // re-stalls), never per stall event.
    EXPECT_EQ(m.netStalls(), t.net + t.dma);
    EXPECT_GT(t.net, 0u);
    EXPECT_GT(t.dma, 0u);
}

} // namespace
} // namespace triarch::study
