/**
 * @file
 * Edge-case and contract tests: boundary conditions, misuse
 * detection (death tests on the panic/fatal paths), and the less
 * traveled corners of each machine's API. These document what the
 * library guarantees when it is driven wrongly or at its limits.
 */

#include <gtest/gtest.h>

#include "imagine/kernels_imagine.hh"
#include "mem/port.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "sim/bitutil.hh"
#include "viram/kernels_viram.hh"

namespace triarch
{
namespace
{

// ---------------------------------------------------------------
// VIRAM contracts.
// ---------------------------------------------------------------

TEST(ViramEdges, RegisterOutOfRangeDies)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 20;
    viram::ViramMachine m(cfg);
    m.setvl(8);
    EXPECT_DEATH(m.vaddI(32, 0, 1), "out of range");
}

TEST(ViramEdges, LoadOutsideDramDies)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 16;
    viram::ViramMachine m(cfg);
    m.setvl(64);
    EXPECT_DEATH(m.vldUnit(4, cfg.memBytes - 16), "outside on-chip");
}

TEST(ViramEdges, PermuteIndexOutOfRangeDies)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 20;
    viram::ViramMachine m(cfg);
    m.setvl(4);
    std::vector<std::uint16_t> bad{0, 1, 2, 200};
    EXPECT_DEATH(m.vperm2(4, 5, 6, bad), "index out of range");
}

TEST(ViramEdges, PermuteTableTooShortDies)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 20;
    viram::ViramMachine m(cfg);
    m.setvl(8);
    std::vector<std::uint16_t> idx{0, 1};
    EXPECT_DEATH(m.vperm2(4, 5, 6, idx), "shorter than vl");
}

TEST(ViramEdges, PermuteAliasingSourcesIsSafe)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 20;
    viram::ViramMachine m(cfg);
    const Addr a = m.alloc(64, "a");
    m.pokeWords(a, std::vector<Word>{10, 20, 30, 40});
    m.setvl(4);
    m.vldUnit(4, a);
    // Reverse in place: dst == src.
    std::vector<std::uint16_t> rev{3, 2, 1, 0};
    m.vperm2(4, 4, 4, rev);
    const Addr d = m.alloc(64, "d");
    m.vstUnit(4, d);
    EXPECT_EQ(m.peekWords(d, 4),
              (std::vector<Word>{40, 30, 20, 10}));
}

TEST(ViramEdges, OffchipDisabledByDefault)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 16;
    EXPECT_DEATH(
        {
            viram::ViramMachine m(cfg);
            m.alloc(1 << 17, "too big");
        },
        "exhausted");
}

TEST(ViramEdges, OffchipAccessSlowerThanOnchip)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 16;
    cfg.offchipBytes = 1 << 20;
    viram::ViramMachine m(cfg);
    m.setvl(64);

    m.resetTiming();
    m.vldUnit(4, 0);                    // on-chip
    const Cycles onchip = m.completionTime();
    m.resetTiming();
    m.vldUnit(4, cfg.memBytes + 64);    // off-chip DMA
    const Cycles offchip = m.completionTime();
    EXPECT_GT(offchip, 2 * onchip);
}

TEST(ViramEdges, CornerTurnRejectsBadRowBlock)
{
    viram::ViramConfig cfg;
    cfg.memBytes = 1 << 21;
    viram::ViramMachine m(cfg);
    kernels::WordMatrix src(128, 64);
    kernels::WordMatrix dst;
    EXPECT_DEATH(viram::cornerTurnViram(m, src, dst, 100),
                 "fit a vector register");
}

// ---------------------------------------------------------------
// Imagine contracts.
// ---------------------------------------------------------------

TEST(ImagineEdges, StreamPatternLengthMismatchDies)
{
    imagine::ImagineMachine m;
    const Addr a = m.allocMem(4096, "a");
    auto s = m.allocStream(64, "s");
    EXPECT_DEATH(
        m.loadStream(s, imagine::MemPattern::sequential(a, 128)),
        "length mismatch");
    m.freeStream(s);
}

TEST(ImagineEdges, LoadOutsideDramDies)
{
    imagine::ImagineConfig cfg;
    cfg.memBytes = 1 << 16;
    imagine::ImagineMachine m(cfg);
    auto s = m.allocStream(64, "s");
    EXPECT_DEATH(
        m.loadStream(s, imagine::MemPattern::sequential(
                            cfg.memBytes - 64, 64)),
        "outside DRAM");
    m.freeStream(s);
}

TEST(ImagineEdges, SrfDataOnInvalidStreamDies)
{
    imagine::ImagineMachine m;
    imagine::StreamRef invalid;
    EXPECT_DEATH(m.srfData(invalid), "invalid stream");
}

TEST(ImagineEdges, DoubleFreeDies)
{
    EXPECT_DEATH(
        {
            imagine::ImagineMachine m;
            auto s = m.allocStream(64, "s");
            m.freeStream(s);
            imagine::StreamRef copy = s;
            m.freeStream(copy);
        },
        "unknown SRF stream");
}

TEST(ImagineEdges, WholeSrfAllocatable)
{
    imagine::ImagineMachine m;
    auto s = m.allocStream(
        static_cast<unsigned>(m.config().srfBytes / 4), "all");
    EXPECT_EQ(s.offsetWords, 0u);
    m.freeStream(s);
}

TEST(ImagineEdges, KernelWithZeroIterationsCostsOnlyPrologue)
{
    imagine::ImagineMachine m;
    imagine::KernelDesc d;
    d.iterations = 0;
    d.adds = 3;
    d.pipelineDepth = 10;
    m.runKernel(d, {}, {}, [] {});
    EXPECT_LE(m.completionTime(),
              m.config().hostIssueCycles + 10);
}

// ---------------------------------------------------------------
// Raw contracts.
// ---------------------------------------------------------------

TEST(RawEdges, LocalLoadOutOfBoundsDies)
{
    raw::RawMachine m;
    raw::Assembler as;
    as.li(1, static_cast<std::int32_t>(m.config().sramBytes));
    as.lw(2, 1, 0);
    as.halt();
    m.setProgram(0, as.finish());
    EXPECT_DEATH(m.run(), "outside SRAM");
}

TEST(RawEdges, GlobalStoreOutOfBoundsDies)
{
    raw::RawConfig cfg;
    cfg.globalBytes = 1 << 16;
    raw::RawMachine m(cfg);
    raw::Assembler as;
    as.li(1, static_cast<std::int32_t>(raw::globalBase + (1 << 16)));
    as.sw(1, 1, 0);
    as.halt();
    m.setProgram(0, as.finish());
    EXPECT_DEATH(m.run(), "outside global DRAM");
}

TEST(RawEdges, CstoWithoutRouteDies)
{
    raw::RawMachine m;
    raw::Assembler as;
    as.li(raw::regCsto, 1);
    as.halt();
    m.setProgram(0, as.finish());
    EXPECT_DEATH(m.run(), "without a configured route");
}

TEST(RawEdges, EmptyProgramTileIsHalted)
{
    raw::RawMachine m;
    // No programs at all: machine is immediately done.
    EXPECT_EQ(m.run(), 0u);
}

TEST(RawEdges, FifoBackpressureThrottlesSender)
{
    // A fast sender against a slow receiver must be limited by the
    // FIFO capacity, not run ahead unboundedly.
    raw::RawConfig cfg;
    cfg.fifoCapacity = 2;
    raw::RawMachine m(cfg);
    m.setRoute(0, 1);

    raw::Assembler src;
    for (int i = 0; i < 32; ++i)
        src.li(raw::regCsto, i);
    src.halt();
    m.setProgram(0, src.finish());

    raw::Assembler dst;
    dst.li(2, 32);
    raw::Label loop = dst.label();
    dst.bind(loop);
    dst.move(1, raw::regCsti);
    dst.add(3, 3, 1);       // extra work: ~4 cycles per word
    dst.add(3, 3, 1);
    dst.addi(2, 2, -1);
    dst.bne(2, 0, loop);
    dst.halt();
    m.setProgram(1, dst.finish());

    const Cycles cycles = m.run();
    EXPECT_GE(cycles, 32u * 5);     // receiver-paced
    EXPECT_GT(m.netStalls(), 20u);  // sender actually blocked
}

TEST(RawEdges, PokeLocalOutOfBoundsDies)
{
    raw::RawMachine m;
    std::vector<Word> w(4);
    EXPECT_DEATH(m.pokeLocal(0, m.config().sramBytes - 4, w),
                 "outside tile SRAM");
}

TEST(RawEdges, BadRouteEndpointDies)
{
    raw::RawMachine m;
    EXPECT_DEATH(m.setRoute(0, 99), "bad route endpoint");
}

TEST(RawEdges, CornerTurnRejectsNonSquare)
{
    raw::RawMachine m;
    kernels::WordMatrix src(128, 64);
    kernels::WordMatrix dst;
    EXPECT_DEATH(raw::cornerTurnRaw(m, src, dst), "square matrix");
}

// ---------------------------------------------------------------
// PPC and substrate corners.
// ---------------------------------------------------------------

TEST(PpcEdges, ResetRestoresColdCaches)
{
    ppc::PpcMachine m;
    m.load(0x100);
    m.load(0x100);
    EXPECT_GT(m.cycles(), 0u);
    m.resetTiming();
    EXPECT_EQ(m.cycles(), 0u);
    // After reset the same load must miss again (cold cache).
    m.load(0x100);
    EXPECT_GE(m.cycles(), m.config().memLatency);
}

TEST(PpcEdges, CornerTurnRejectsBadBlockEdge)
{
    ppc::PpcMachine m;
    kernels::WordMatrix src(64, 64), dst;
    EXPECT_DEATH(ppc::cornerTurnPpc(m, src, dst, false, 6),
                 "multiple of 4");
}

TEST(PortEdges, FractionalRatesAccumulateExactly)
{
    // 4 words per 5 cycles: 1000 words must take exactly 1250.
    mem::BandwidthPort port("p", 4, 5);
    EXPECT_EQ(port.transferTime(1000), 1250u);
    // One word still costs at least a cycle (ceil).
    EXPECT_EQ(port.transferTime(1), 2u);
}

TEST(BitUtilEdges, RoundUpAndBitsBoundaries)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(bits(0xFF, 8, 8), 0u);
    EXPECT_EQ(reverseBits(0, 7), 0u);
    EXPECT_EQ(reverseBits(127, 7), 127u);
}

TEST(KernelEdges, CslcRejectsBadTiling)
{
    kernels::CslcConfig cfg;
    cfg.samples = 1000;     // does not tile into 73 x 128/112
    EXPECT_DEATH(kernels::makeJammedInput(cfg, {10}, 1),
                 "does not cover");
}

TEST(KernelEdges, TransposeShapeMismatchDies)
{
    kernels::WordMatrix src(4, 8);
    kernels::WordMatrix wrong(4, 8);
    EXPECT_DEATH(kernels::transposeNaive(src, wrong),
                 "shape mismatch");
}

TEST(KernelEdges, SingleElementMatrix)
{
    kernels::WordMatrix src(1, 1), dst(1, 1);
    src.at(0, 0) = 7;
    kernels::transposeNaive(src, dst);
    EXPECT_EQ(dst.at(0, 0), 7u);
    EXPECT_TRUE(kernels::isTransposeOf(src, dst));
}

TEST(KernelEdges, BeamSteeringZeroDwells)
{
    kernels::BeamConfig cfg;
    cfg.dwells = 0;
    auto tables = kernels::makeBeamTables(cfg, 1);
    auto out = kernels::beamSteerReference(cfg, tables);
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace triarch
