/**
 * @file
 * Tests for the FFT family: correctness against the reference DFT,
 * algebraic properties (linearity, Parseval, impulse response,
 * inverse round trip), equivalence of the radix variants, and the
 * operation-count models including the paper's radix-2 / radix-4
 * op-ratio claim (Section 4.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/fft.hh"
#include "sim/rng.hh"

namespace triarch::kernels
{
namespace
{

std::vector<cfloat>
randomSignal(unsigned n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<cfloat> x(n);
    for (auto &v : x)
        v = cfloat(rng.nextSignedFloat(), rng.nextSignedFloat());
    return x;
}

double
maxError(const std::vector<cfloat> &a, const std::vector<cfloat> &b)
{
    double e = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        e = std::max<double>(e, std::abs(a[i] - b[i]));
    return e;
}

class FftSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FftSizes, Radix2MatchesDft)
{
    const unsigned n = GetParam();
    auto x = randomSignal(n, n);
    auto ref = dftReference(x);
    fftRadix2(x);
    EXPECT_LT(maxError(x, ref), 1e-3 * n);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u,
                                           128u, 256u, 1024u));

class Radix4Sizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Radix4Sizes, Radix4MatchesDft)
{
    const unsigned n = GetParam();
    auto x = randomSignal(n, n + 1);
    auto ref = dftReference(x);
    fftRadix4(x);
    EXPECT_LT(maxError(x, ref), 1e-3 * n);
}

INSTANTIATE_TEST_SUITE_P(PowersOfFour, Radix4Sizes,
                         ::testing::Values(4u, 16u, 64u, 256u));

TEST(Fft, Mixed128MatchesDft)
{
    auto x = randomSignal(128, 77);
    auto ref = dftReference(x);
    fftMixed128(x);
    EXPECT_LT(maxError(x, ref), 1e-3);
}

TEST(Fft, Mixed128MatchesRadix2)
{
    auto x = randomSignal(128, 5);
    auto y = x;
    fftMixed128(x);
    fftRadix2(y);
    EXPECT_LT(maxError(x, y), 1e-4);
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<cfloat> x(128, cfloat(0, 0));
    x[0] = cfloat(1, 0);
    fftMixed128(x);
    for (const auto &v : x) {
        EXPECT_NEAR(v.real(), 1.0f, 1e-5);
        EXPECT_NEAR(v.imag(), 0.0f, 1e-5);
    }
}

TEST(Fft, ToneLandsInItsBin)
{
    constexpr unsigned n = 128, bin = 9;
    std::vector<cfloat> x(n);
    for (unsigned t = 0; t < n; ++t) {
        const double a = 2.0 * M_PI * bin * t / n;
        x[t] = cfloat(std::cos(a), std::sin(a));
    }
    fftMixed128(x);
    for (unsigned k = 0; k < n; ++k) {
        if (k == bin)
            EXPECT_NEAR(std::abs(x[k]), n, 1e-2);
        else
            EXPECT_LT(std::abs(x[k]), 1e-2);
    }
}

TEST(Fft, Linearity)
{
    auto x = randomSignal(128, 1);
    auto y = randomSignal(128, 2);
    std::vector<cfloat> sum(128);
    for (unsigned i = 0; i < 128; ++i)
        sum[i] = 2.0f * x[i] + 3.0f * y[i];

    fftMixed128(x);
    fftMixed128(y);
    fftMixed128(sum);
    std::vector<cfloat> expect(128);
    for (unsigned i = 0; i < 128; ++i)
        expect[i] = 2.0f * x[i] + 3.0f * y[i];
    EXPECT_LT(maxError(sum, expect), 1e-3);
}

TEST(Fft, ParsevalHolds)
{
    auto x = randomSignal(256, 3);
    double timePower = 0.0;
    for (auto &v : x)
        timePower += std::norm(v);
    auto spec = x;
    fftRadix2(spec);
    double freqPower = 0.0;
    for (auto &v : spec)
        freqPower += std::norm(v);
    EXPECT_NEAR(freqPower / 256.0, timePower, 1e-3 * timePower);
}

TEST(Fft, InverseRoundTripRadix2)
{
    auto x = randomSignal(512, 4);
    auto y = x;
    fftRadix2(y);
    ifft(y);
    EXPECT_LT(maxError(x, y), 1e-4);
}

TEST(Fft, InverseRoundTripMixed128)
{
    auto x = randomSignal(128, 6);
    auto y = x;
    fftMixed128(y);
    ifftMixed128(y);
    EXPECT_LT(maxError(x, y), 1e-4);
}

TEST(Fft, BitReversalIsInvolution)
{
    auto x = randomSignal(64, 8);
    auto y = x;
    bitReversePermute(y);
    EXPECT_NE(maxError(x, y), 0.0);
    bitReversePermute(y);
    EXPECT_EQ(maxError(x, y), 0.0);
}

TEST(FftOpsModel, Radix2CountScalesNLogN)
{
    const FftOps a = radix2Ops(128);
    // 448 butterflies: 10 flops, 6 loads, 4 stores each.
    EXPECT_EQ(a.fadds, 448u * 6);
    EXPECT_EQ(a.fmuls, 448u * 4);
    EXPECT_EQ(a.loads, 448u * 6);
    EXPECT_EQ(a.stores, 448u * 4);
    EXPECT_EQ(a.flops(), 4480u);
}

TEST(FftOpsModel, Radix4CheaperPerPoint)
{
    const double r2 = static_cast<double>(radix2Ops(64).flops());
    const double r4 = static_cast<double>(radix4Ops(64).flops());
    EXPECT_LT(r4, r2);
}

TEST(FftOpsModel, PaperRadixRatioAboutOnePointFive)
{
    // Section 4.3: "The number of operations (including loads and
    // stores) in the radix-2 FFT is about 1.5 the number in the
    // radix-4 FFT" for the 128-point CSLC transform.
    const double ratio = static_cast<double>(radix2Ops(128).total())
                         / static_cast<double>(mixed128Ops().total());
    EXPECT_GT(ratio, 1.3);
    EXPECT_LT(ratio, 1.7);
}

TEST(FftOpsModel, TwiddleTableUnitCircle)
{
    auto tw = twiddleTable(64);
    ASSERT_EQ(tw.size(), 64u);
    for (auto &w : tw)
        EXPECT_NEAR(std::abs(w), 1.0f, 1e-5);
    EXPECT_NEAR(tw[16].imag(), -1.0f, 1e-5);    // W^(n/4) = -i
}

} // namespace
} // namespace triarch::kernels
