/**
 * @file
 * Tests for the comparative-study framework: machine registry
 * (Tables 1-2), the Section 2.5 performance model, the experiment
 * runner, report building, and — most importantly — the paper's
 * headline shape: per-kernel architecture rankings and speedup
 * structure from Table 3 / Figures 8-9, measured end-to-end through
 * all four simulators.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "study/machine_info.hh"
#include "study/perf_model.hh"
#include "study/report.hh"

namespace triarch::study
{
namespace
{

TEST(MachineInfoTest, Table1Values)
{
    const auto &viram = machineInfo(MachineId::Viram);
    EXPECT_EQ(viram.onchipWordsPerCycle, 8.0);
    EXPECT_EQ(viram.offchipWordsPerCycle, 2.0);
    EXPECT_EQ(viram.computeWordsPerCycle, 8.0);

    const auto &imagine = machineInfo(MachineId::Imagine);
    EXPECT_EQ(imagine.onchipWordsPerCycle, 16.0);
    EXPECT_EQ(imagine.computeWordsPerCycle, 48.0);

    const auto &rawInfo = machineInfo(MachineId::Raw);
    EXPECT_EQ(rawInfo.offchipWordsPerCycle, 28.0);
}

TEST(MachineInfoTest, Table2Values)
{
    EXPECT_EQ(machineInfo(MachineId::PpcScalar).clockMhz, 1000u);
    EXPECT_EQ(machineInfo(MachineId::Viram).clockMhz, 200u);
    EXPECT_EQ(machineInfo(MachineId::Imagine).clockMhz, 300u);
    EXPECT_EQ(machineInfo(MachineId::Raw).clockMhz, 300u);
    EXPECT_DOUBLE_EQ(machineInfo(MachineId::Imagine).peakGflops, 14.4);
    EXPECT_EQ(machineInfo(MachineId::Imagine).numAlus, 48u);
}

TEST(MachineInfoTest, NamesAndLists)
{
    EXPECT_EQ(machineName(MachineId::Viram), "VIRAM");
    EXPECT_EQ(allMachines().size(), 5u);
    EXPECT_EQ(researchMachines().size(), 3u);
}

TEST(PerfModel, CornerTurnBounds)
{
    // 1024x1024: 1M words each way.
    const auto viram = cornerTurnBound(MachineId::Viram, 1024);
    EXPECT_EQ(viram.cycles, 1048576u / 4 + 1048576u / 8);

    const auto imagine = cornerTurnBound(MachineId::Imagine, 1024);
    EXPECT_EQ(imagine.cycles, 1048576u);

    const auto rawBound = cornerTurnBound(MachineId::Raw, 1024);
    EXPECT_EQ(rawBound.cycles, 2u * 1048576u / 16);
    EXPECT_NE(rawBound.resource.find("issue"), std::string::npos);

    // Shape: Raw's bound is by far the lowest (Section 4.2).
    EXPECT_LT(rawBound.cycles, viram.cycles);
    EXPECT_LT(viram.cycles, imagine.cycles);
}

TEST(PerfModel, CslcBoundsOrderedLikeThePaper)
{
    kernels::CslcConfig cfg;
    const auto viram = cslcBound(MachineId::Viram, cfg);
    const auto imagine = cslcBound(MachineId::Imagine, cfg);
    const auto rawBound = cslcBound(MachineId::Raw, cfg);
    // Imagine has the most flops/cycle; VIRAM the least (FP on one
    // VAU only). Raw pays the radix-2 op-count premium.
    EXPECT_LT(imagine.cycles, rawBound.cycles);
    EXPECT_LT(rawBound.cycles, viram.cycles);
}

TEST(PerfModel, BeamSteeringBindingResources)
{
    kernels::BeamConfig cfg;
    // Section 4.4: Imagine's beam steering is memory-bound; VIRAM
    // and Raw are compute-bound.
    EXPECT_NE(beamSteeringBound(MachineId::Imagine, cfg)
                  .resource.find("bandwidth"),
              std::string::npos);
    EXPECT_NE(beamSteeringBound(MachineId::Viram, cfg)
                  .resource.find("VAU"),
              std::string::npos);
    EXPECT_NE(beamSteeringBound(MachineId::Raw, cfg)
                  .resource.find("issue"),
              std::string::npos);
}

TEST(ReportTables, Table1And2Render)
{
    std::ostringstream os;
    buildTable1().render(os);
    buildTable2().render(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("VIRAM"), std::string::npos);
    EXPECT_NE(s.find("SRF"), std::string::npos);
    EXPECT_NE(s.find("Peak GFLOPS"), std::string::npos);
    EXPECT_NE(s.find("14.40"), std::string::npos);
}

// ---------------------------------------------------------------
// Reduced-size end-to-end study (fast), checking run mechanics.
// ---------------------------------------------------------------

StudyConfig
smallConfig()
{
    StudyConfig cfg;
    cfg.matrixSize = 128;
    cfg.cslc.subBands = 8;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    cfg.beam.elements = 256;
    cfg.beam.dwells = 2;
    cfg.jammerBins = {64, 200};
    return cfg;
}

TEST(RunnerSmall, EveryCellValidates)
{
    Runner runner(smallConfig());
    for (MachineId machine : allMachines()) {
        for (KernelId kernel : allKernels()) {
            auto r = runner.run(machine, kernel);
            EXPECT_TRUE(r.validated)
                << machineName(machine) << " / " << kernelName(kernel);
            EXPECT_GT(r.cycles, 0u);
        }
    }
}

TEST(RunnerSmall, RawCslcReportsBothNumbers)
{
    Runner runner(smallConfig());
    auto r = runner.run(MachineId::Raw, KernelId::Cslc);
    ASSERT_TRUE(r.measuredUnbalanced.has_value());
    // 8 sub-bands on 16 tiles: extrapolation halves the time.
    EXPECT_LT(r.cycles, *r.measuredUnbalanced);
}

TEST(RunnerSmall, MillisecondsUseMachineClock)
{
    Runner runner(smallConfig());
    auto r = runner.run(MachineId::Viram, KernelId::BeamSteering);
    EXPECT_NEAR(r.milliseconds(),
                static_cast<double>(r.cycles) / (200.0 * 1000.0),
                1e-9);
}

// ---------------------------------------------------------------
// Full-size study: the paper's Table 3 shape. Shared fixture so the
// 15 simulations run once.
// ---------------------------------------------------------------

class PaperShape : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        runner = new Runner();
        results = new std::vector<RunResult>(runner->runAll());
    }

    static void
    TearDownTestSuite()
    {
        delete results;
        delete runner;
        results = nullptr;
        runner = nullptr;
    }

    static Cycles
    cycles(MachineId machine, KernelId kernel)
    {
        return findResult(*results, machine, kernel).cycles;
    }

    static Runner *runner;
    static std::vector<RunResult> *results;
};

Runner *PaperShape::runner = nullptr;
std::vector<RunResult> *PaperShape::results = nullptr;

TEST_F(PaperShape, AllFifteenCellsValidate)
{
    ASSERT_EQ(results->size(), 15u);
    for (const auto &r : *results)
        EXPECT_TRUE(r.validated)
            << machineName(r.machine) << " / " << kernelName(r.kernel);
}

TEST_F(PaperShape, CornerTurnRankingMatchesTable3)
{
    // Paper: Raw 146 < VIRAM 554 < Imagine 1,439 < Altivec 29,288
    //        < PPC 34,250 (10^3 cycles).
    EXPECT_LT(cycles(MachineId::Raw, KernelId::CornerTurn),
              cycles(MachineId::Viram, KernelId::CornerTurn));
    EXPECT_LT(cycles(MachineId::Viram, KernelId::CornerTurn),
              cycles(MachineId::Imagine, KernelId::CornerTurn));
    EXPECT_LT(cycles(MachineId::Imagine, KernelId::CornerTurn),
              cycles(MachineId::PpcAltivec, KernelId::CornerTurn));
    EXPECT_LT(cycles(MachineId::PpcAltivec, KernelId::CornerTurn),
              cycles(MachineId::PpcScalar, KernelId::CornerTurn));
}

TEST_F(PaperShape, CslcRankingMatchesTable3)
{
    // Paper: Imagine 196 < Raw 357 < VIRAM 424 << Altivec 4,931
    //        << PPC 29,013.
    EXPECT_LT(cycles(MachineId::Imagine, KernelId::Cslc),
              cycles(MachineId::Raw, KernelId::Cslc));
    EXPECT_LT(cycles(MachineId::Raw, KernelId::Cslc),
              cycles(MachineId::Viram, KernelId::Cslc));
    EXPECT_LT(cycles(MachineId::Viram, KernelId::Cslc),
              cycles(MachineId::PpcAltivec, KernelId::Cslc));
    EXPECT_LT(cycles(MachineId::PpcAltivec, KernelId::Cslc),
              cycles(MachineId::PpcScalar, KernelId::Cslc));
}

TEST_F(PaperShape, BeamSteeringRankingMatchesTable3)
{
    // Paper: Raw 19 < VIRAM 35 < Imagine 87 << Altivec 364 < PPC 730.
    EXPECT_LT(cycles(MachineId::Raw, KernelId::BeamSteering),
              cycles(MachineId::Viram, KernelId::BeamSteering));
    EXPECT_LT(cycles(MachineId::Viram, KernelId::BeamSteering),
              cycles(MachineId::Imagine, KernelId::BeamSteering));
    EXPECT_LT(cycles(MachineId::Imagine, KernelId::BeamSteering),
              cycles(MachineId::PpcAltivec, KernelId::BeamSteering));
    EXPECT_LT(cycles(MachineId::PpcAltivec, KernelId::BeamSteering),
              cycles(MachineId::PpcScalar, KernelId::BeamSteering));
}

TEST_F(PaperShape, ResearchChipsBeatAltivecTenfoldSomewhere)
{
    // Section 4.6: VIRAM outperformed the G4 AltiVec by more than
    // 10x on all three kernels.
    for (KernelId kernel : allKernels()) {
        EXPECT_GT(speedupVsAltivec(*results, MachineId::Viram, kernel,
                                   false),
                  8.0)
            << kernelName(kernel);
    }
}

TEST_F(PaperShape, MeasuredCyclesRespectModelBounds)
{
    // Property: no simulator beats the Section 2.5 lower bound.
    const auto &cfg = runner->config();
    for (MachineId machine : researchMachines()) {
        EXPECT_GE(cycles(machine, KernelId::CornerTurn),
                  cornerTurnBound(machine, cfg.matrixSize).cycles)
            << machineName(machine);
        EXPECT_GE(cycles(machine, KernelId::Cslc),
                  cslcBound(machine, cfg.cslc).cycles)
            << machineName(machine);
        EXPECT_GE(cycles(machine, KernelId::BeamSteering),
                  beamSteeringBound(machine, cfg.beam).cycles)
            << machineName(machine);
    }
}

TEST_F(PaperShape, Table3WithinFactorTwoOfPaper)
{
    // Absolute cycle counts (10^3) from the paper's Table 3; the
    // substitution simulators should land within a factor of ~2.
    struct Expect
    {
        MachineId machine;
        KernelId kernel;
        double paperKcycles;
    };
    const Expect expectations[] = {
        {MachineId::PpcScalar, KernelId::CornerTurn, 34250},
        {MachineId::PpcAltivec, KernelId::CornerTurn, 29288},
        {MachineId::Viram, KernelId::CornerTurn, 554},
        {MachineId::Imagine, KernelId::CornerTurn, 1439},
        {MachineId::Raw, KernelId::CornerTurn, 146},
        {MachineId::PpcScalar, KernelId::Cslc, 29013},
        {MachineId::PpcAltivec, KernelId::Cslc, 4931},
        {MachineId::Viram, KernelId::Cslc, 424},
        {MachineId::Imagine, KernelId::Cslc, 196},
        {MachineId::Raw, KernelId::Cslc, 357},
        {MachineId::PpcScalar, KernelId::BeamSteering, 730},
        {MachineId::PpcAltivec, KernelId::BeamSteering, 364},
        {MachineId::Viram, KernelId::BeamSteering, 35},
        {MachineId::Imagine, KernelId::BeamSteering, 87},
        {MachineId::Raw, KernelId::BeamSteering, 19},
    };
    for (const auto &e : expectations) {
        const double measured =
            static_cast<double>(cycles(e.machine, e.kernel)) / 1000.0;
        EXPECT_GT(measured, e.paperKcycles / 2.0)
            << machineName(e.machine) << " / " << kernelName(e.kernel);
        EXPECT_LT(measured, e.paperKcycles * 2.0)
            << machineName(e.machine) << " / " << kernelName(e.kernel);
    }
}

TEST_F(PaperShape, TablesAndFiguresRender)
{
    std::ostringstream os;
    buildTable3(*results).render(os);
    buildTable4(runner->config(), *results).render(os);
    buildFigure8(*results).render(os);
    buildFigure9(*results).render(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("Table 3"), std::string::npos);
    EXPECT_NE(s.find("Binding resource"), std::string::npos);
    EXPECT_NE(s.find("Figure 8"), std::string::npos);
    EXPECT_NE(s.find("execution time"), std::string::npos);
}

TEST_F(PaperShape, Figure9ClockAdjustmentShrinksResearchSpeedups)
{
    // The research chips run at 200-300 MHz vs the G4's 1 GHz, so
    // execution-time speedups are smaller than cycle speedups.
    for (MachineId machine : researchMachines()) {
        for (KernelId kernel : allKernels()) {
            EXPECT_LT(speedupVsAltivec(*results, machine, kernel,
                                       true),
                      speedupVsAltivec(*results, machine, kernel,
                                       false));
        }
    }
}

TEST_F(PaperShape, ExplanatoryNotesMatchPaperClaims)
{
    // Note keys carry the owning stat-group prefix (machine token).
    bool sawUtilization = false, sawIdle = false, sawMemory = false;

    // Imagine CSLC utilization ~25% (Section 4.3).
    const auto &imagineCslc =
        findResult(*results, MachineId::Imagine, KernelId::Cslc);
    for (const auto &[key, value] : imagineCslc.notes) {
        if (key == "imagine.alu_utilization") {
            sawUtilization = true;
            EXPECT_GT(value, 0.10);
            EXPECT_LT(value, 0.45);
        }
    }
    // Raw CSLC idle fraction ~8% (Section 4.3).
    const auto &rawCslc =
        findResult(*results, MachineId::Raw, KernelId::Cslc);
    for (const auto &[key, value] : rawCslc.notes) {
        if (key == "raw.idle_fraction") {
            sawIdle = true;
            EXPECT_GT(value, 0.03);
            EXPECT_LT(value, 0.20);
        }
        if (key == "raw.cache_stall_fraction") {
            EXPECT_LT(value, 0.12);
        }
    }
    // Imagine corner turn is memory-dominated (87% in the paper).
    const auto &imagineCt =
        findResult(*results, MachineId::Imagine, KernelId::CornerTurn);
    for (const auto &[key, value] : imagineCt.notes) {
        if (key == "imagine.memory_fraction") {
            sawMemory = true;
            EXPECT_GT(value, 0.6);
        }
    }

    EXPECT_TRUE(sawUtilization);
    EXPECT_TRUE(sawIdle);
    EXPECT_TRUE(sawMemory);
}

} // namespace
} // namespace triarch::study

// Re-opened: independent cross-validation pins (Section 2 quotes).
#include "imagine/machine.hh"

namespace triarch::study
{
namespace
{

TEST(PriorClaims, ImagineMediaKernelUtilizationInPublishedBand)
{
    // Section 2.2: "ALU utilization between 84% and 95% is reported
    // for streaming media applications."
    imagine::ImagineMachine m;
    const Addr src = m.allocMem(1 << 20, "pixels");
    constexpr unsigned strips = 10;
    constexpr unsigned stripWords = 1632;
    imagine::StreamRef in[strips], out[strips];
    for (unsigned s = 0; s < strips; ++s) {
        in[s] = m.allocStream(stripWords, "in");
        out[s] = m.allocStream(stripWords, "out");
        m.loadStream(in[s],
                     imagine::MemPattern::sequential(
                         src + s * stripWords * 4, stripWords));
    }
    m.resetTiming();
    for (unsigned s = 0; s < strips; ++s) {
        imagine::KernelDesc media;
        media.iterations = stripWords / 8;
        media.adds = 6;
        media.mults = 4;
        media.srfWords = 2;
        media.pipelineDepth = 24;
        media.usefulFlops =
            static_cast<std::uint64_t>(media.iterations) * 8 * 10;
        m.runKernel(media, {&in[s]}, {&out[s]}, [] {});
    }
    const double util =
        static_cast<double>(m.usefulFlops())
        / (static_cast<double>(m.completionTime()) * 8 * 5);
    EXPECT_GT(util, 0.84);
    EXPECT_LT(util, 0.95);
}

} // namespace
} // namespace triarch::study
