/**
 * @file
 * Tests for the Imagine machine model: SRF allocation, stream
 * transfer semantics and timing, the VLIW kernel schedule model,
 * overlap/descriptor-register behavior, and end-to-end kernel
 * correctness against the reference implementations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "imagine/kernels_imagine.hh"
#include "imagine/machine.hh"
#include "imagine/srf.hh"
#include "sim/bitutil.hh"

namespace triarch::imagine
{
namespace
{

TEST(SrfAllocator, AllocatesBlockAligned)
{
    SrfAllocator alloc(1024, 128);  // 8 blocks
    auto a = alloc.alloc(1, "a");   // 1 word -> 1 block
    auto b = alloc.alloc(33, "b");  // 33 words -> 2 blocks
    EXPECT_EQ(a.offsetWords % 32, 0u);
    EXPECT_EQ(b.offsetWords % 32, 0u);
    EXPECT_NE(a.offsetWords, b.offsetWords);
    EXPECT_EQ(alloc.blocksInUse(), 3u);
}

TEST(SrfAllocator, FreeMakesRoom)
{
    SrfAllocator alloc(1024, 128);
    auto a = alloc.alloc(256, "a");     // whole SRF (8 blocks)
    alloc.free(a);
    EXPECT_EQ(alloc.blocksInUse(), 0u);
    auto b = alloc.alloc(256, "b");
    EXPECT_EQ(b.offsetWords, 0u);
    alloc.free(b);
}

TEST(SrfAllocator, FirstFitReusesGaps)
{
    SrfAllocator alloc(1024, 128);
    auto a = alloc.alloc(32, "a");
    auto b = alloc.alloc(32, "b");
    auto c = alloc.alloc(32, "c");
    alloc.free(b);
    auto d = alloc.alloc(32, "d");  // should land in b's hole
    EXPECT_EQ(d.offsetWords, b.offsetWords);
    alloc.free(a);
    alloc.free(c);
    alloc.free(d);
}

TEST(SrfAllocator, ExhaustionIsFatal)
{
    EXPECT_DEATH(
        {
            SrfAllocator alloc(256, 128);
            alloc.alloc(64, "a");
            alloc.alloc(64, "b");   // 2nd block taken
            alloc.alloc(1, "c");    // no room
        },
        "SRF exhausted");
}

TEST(SrfAllocator, PeakTracksHighWater)
{
    SrfAllocator alloc(1024, 128);
    auto a = alloc.alloc(128, "a");
    alloc.free(a);
    auto b = alloc.alloc(32, "b");
    EXPECT_EQ(alloc.peakBlocks(), 4u);
    alloc.free(b);
}

TEST(ImagineMachine, StreamLoadStoreRoundTrip)
{
    ImagineMachine m;
    const Addr src = m.allocMem(1024, "src");
    const Addr dst = m.allocMem(1024, "dst");
    std::vector<Word> data(256);
    for (unsigned i = 0; i < 256; ++i)
        data[i] = i * 7;
    m.pokeWords(src, data);

    auto s = m.allocStream(256, "s");
    m.loadStream(s, MemPattern::sequential(src, 256));
    m.storeStream(s, MemPattern::sequential(dst, 256));
    EXPECT_EQ(m.peekWords(dst, 256), data);
    m.freeStream(s);
}

TEST(ImagineMachine, StridedRecordGather)
{
    ImagineMachine m;
    const Addr src = m.allocMem(4096, "src");
    std::vector<Word> data(1024);
    for (unsigned i = 0; i < 1024; ++i)
        data[i] = i;
    m.pokeWords(src, data);

    // 8 records of 4 words, stride 64 words.
    MemPattern pat{src, 4, 256, 8};
    auto s = m.allocStream(32, "s");
    m.loadStream(s, pat);
    auto view = m.srfData(s);
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned w = 0; w < 4; ++w)
            EXPECT_EQ(view[r * 4 + w], r * 64 + w);
    }
    m.freeStream(s);
}

TEST(ImagineMachine, KernelIiFollowsResources)
{
    ImagineMachine m;
    KernelDesc d;
    d.adds = 6;                     // 3 adders -> 2
    EXPECT_EQ(m.kernelIi(d), 2u);
    d.mults = 8;                    // 2 mults -> 4
    EXPECT_EQ(m.kernelIi(d), 4u);
    d.comm = 5;                     // 1 comm -> 5
    EXPECT_EQ(m.kernelIi(d), 5u);
    d.divs = 7;                     // 1 divider -> 7
    EXPECT_EQ(m.kernelIi(d), 7u);
    d.srfWords = 40;                // 4/cycle -> 10
    EXPECT_EQ(m.kernelIi(d), 10u);
}

TEST(ImagineMachine, KernelTimeIncludesPrologue)
{
    ImagineMachine m;
    KernelDesc d;
    d.iterations = 100;
    d.adds = 3;     // II = 1
    d.pipelineDepth = 20;
    auto s = m.allocStream(8, "s");
    const Cycles t0 = m.completionTime();
    m.runKernel(d, {}, {&s}, [] {});
    EXPECT_GE(m.completionTime() - t0, 120u);
    m.freeStream(s);
}

TEST(ImagineMachine, KernelWaitsForInputStream)
{
    ImagineMachine m;
    const Addr src = m.allocMem(1 << 20, "src");
    auto s = m.allocStream(8192, "s");
    m.loadStream(s, MemPattern::sequential(src, 8192));
    const Cycles loadDone = m.completionTime();

    KernelDesc d;
    d.name = "tiny";
    d.iterations = 1;
    d.adds = 1;
    m.runKernel(d, {&s}, {}, [] {});
    // Kernel cannot start before its input stream arrived.
    EXPECT_GT(m.completionTime(), loadDone);
    m.freeStream(s);
}

TEST(ImagineMachine, LoadsOverlapAcrossEngines)
{
    ImagineMachine m;
    const Addr a = m.allocMem(1 << 20, "a");
    auto s1 = m.allocStream(8192, "s1");
    auto s2 = m.allocStream(8192, "s2");
    m.loadStream(s1, MemPattern::sequential(a, 8192));
    m.loadStream(s2, MemPattern::sequential(a + 65536, 8192));
    // Two engines at ~1 word/cycle: both loads take ~8192 cycles and
    // run concurrently, so total is much less than 2 x 8192.
    EXPECT_LT(m.completionTime(), 13000u);
    EXPECT_GE(m.completionTime(), 8192u);
    m.freeStream(s1);
    m.freeStream(s2);
}

TEST(ImagineMachine, MemoryAndKernelsOverlap)
{
    ImagineMachine m;
    const Addr a = m.allocMem(1 << 20, "a");
    auto s1 = m.allocStream(8192, "s1");
    auto s2 = m.allocStream(8192, "s2");
    m.loadStream(s1, MemPattern::sequential(a, 8192));

    KernelDesc d;
    d.iterations = 4000;
    d.adds = 3;     // II 1 -> ~4000 cycles
    m.runKernel(d, {&s1}, {}, [] {});   // waits for s1

    // An independent load overlaps with the kernel.
    m.loadStream(s2, MemPattern::sequential(a + 65536, 8192));
    EXPECT_LT(m.completionTime(), 8500u + 4200u + 4000u);
    m.freeStream(s1);
    m.freeStream(s2);
}

TEST(ImagineMachine, DescriptorRegistersLimitInflightOps)
{
    ImagineConfig cfg;
    cfg.streamDescRegs = 1;     // fully serializing
    ImagineMachine serial(cfg);
    const Addr a = serial.allocMem(1 << 22, "a");

    std::vector<StreamRef> streams;
    for (unsigned i = 0; i < 8; ++i) {
        streams.push_back(serial.allocStream(4096, "s"));
        serial.loadStream(streams.back(),
                          MemPattern::sequential(a + i * 65536, 4096));
    }
    const Cycles serialTime = serial.completionTime();

    ImagineMachine parallel;    // default: 6 descriptor registers
    const Addr b = parallel.allocMem(1 << 22, "b");
    std::vector<StreamRef> streams2;
    for (unsigned i = 0; i < 8; ++i) {
        streams2.push_back(parallel.allocStream(4096, "s"));
        parallel.loadStream(streams2.back(),
                            MemPattern::sequential(b + i * 65536, 4096));
    }
    EXPECT_GT(serialTime, parallel.completionTime() * 3 / 2);
}

TEST(ImagineMachine, StridedStoreSlowerThanSequential)
{
    ImagineMachine m;
    const Addr a = m.allocMem(1 << 22, "a");
    auto s = m.allocStream(8192, "s");
    m.loadStream(s, MemPattern::sequential(a, 8192));

    m.resetTiming();
    m.storeStream(s, MemPattern::sequential(a + (1 << 21), 8192));
    const Cycles seq = m.completionTime();

    m.resetTiming();
    MemPattern blocks{a + (1 << 21), 8, 4096, 1024};
    m.storeStream(s, blocks);
    const Cycles strided = m.completionTime();
    // Short records with a non-unit stride miss a DRAM row per
    // record; Section 4.2's corner-turn store pattern.
    EXPECT_GT(strided, seq + seq / 8);
    m.freeStream(s);
}

TEST(ImagineMachine, UtilizationAndDescribe)
{
    ImagineMachine m;
    KernelDesc d;
    d.iterations = 100;
    d.adds = 3;
    d.mults = 2;
    d.usefulFlops = 100 * 8 * 5;
    m.runKernel(d, {}, {}, [] {});
    EXPECT_GT(m.aluUtilization(), 0.0);
    EXPECT_LE(m.aluUtilization(), 1.0);

    const std::string desc = m.describe();
    EXPECT_NE(desc.find("SIMD ALU clusters"), std::string::npos);
    EXPECT_NE(desc.find("stream register file"), std::string::npos);
}

TEST(ImagineMachine, ResetTimingClearsClock)
{
    ImagineMachine m;
    const Addr a = m.allocMem(4096, "a");
    auto s = m.allocStream(64, "s");
    m.loadStream(s, MemPattern::sequential(a, 64));
    EXPECT_GT(m.completionTime(), 0u);
    m.resetTiming();
    EXPECT_EQ(m.completionTime(), 0u);
    EXPECT_EQ(m.memWords(), 0u);
    m.freeStream(s);
}

// ---------------------------------------------------------------
// End-to-end kernels vs reference.
// ---------------------------------------------------------------

TEST(ImagineKernels, CornerTurnSmallMatchesReference)
{
    ImagineMachine m;
    kernels::WordMatrix src(64, 48);
    kernels::fillMatrix(src, 5);
    kernels::WordMatrix dst;
    const Cycles cycles = cornerTurnImagine(m, src, dst);
    EXPECT_TRUE(kernels::isTransposeOf(src, dst));
    EXPECT_GT(cycles, 0u);
}

TEST(ImagineKernels, CornerTurnIsMemoryBound)
{
    ImagineMachine m;
    kernels::WordMatrix src(128, 128);
    kernels::fillMatrix(src, 6);
    kernels::WordMatrix dst;
    cornerTurnImagine(m, src, dst);
    // Section 4.2: 87% of corner-turn cycles are memory transfers.
    EXPECT_GT(m.memoryFraction(), 0.5);
    EXPECT_GT(m.memBusy(), m.clusterBusy());
}

TEST(ImagineKernels, BeamSteeringMatchesReference)
{
    ImagineMachine m;
    kernels::BeamConfig cfg;
    cfg.elements = 200;
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, 3);
    auto ref = kernels::beamSteerReference(cfg, tables);

    std::vector<std::int32_t> out;
    const Cycles cycles = beamSteeringImagine(m, cfg, tables, out);
    EXPECT_EQ(out, ref);
    EXPECT_GT(cycles, 0u);
}

TEST(ImagineKernels, BeamSteeringIsMemoryBound)
{
    ImagineMachine m;
    kernels::BeamConfig cfg;
    auto tables = kernels::makeBeamTables(cfg, 4);
    std::vector<std::int32_t> out;
    beamSteeringImagine(m, cfg, tables, out);
    // Section 4.4: loads/stores take ~89% of beam-steering time.
    EXPECT_GT(m.memoryFraction(), 0.6);
}

TEST(ImagineKernels, CslcMatchesReference)
{
    ImagineMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 5;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {100, 351}, 17);
    auto weights = kernels::estimateWeights(cfg, in);
    auto ref = kernels::cslcReference(cfg, in, weights,
                                      kernels::FftAlgo::Mixed128);

    kernels::CslcOutput out;
    const Cycles cycles = cslcImagine(m, cfg, in, weights, out);
    EXPECT_GT(cycles, 0u);

    // Imagine's functional path uses the same mixed-radix FFT as
    // the reference, so agreement is tight.
    double maxErr = 0.0;
    for (unsigned mc = 0; mc < cfg.mainChannels; ++mc) {
        for (std::size_t i = 0; i < ref.main[mc].size(); ++i) {
            maxErr = std::max<double>(
                maxErr, std::abs(ref.main[mc][i] - out.main[mc][i]));
        }
    }
    EXPECT_LT(maxErr, 1e-5);
}

TEST(ImagineKernels, CslcIsComputeBoundWithCommOverhead)
{
    ImagineMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 8;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {77}, 9);
    auto weights = kernels::estimateWeights(cfg, in);
    kernels::CslcOutput out;
    cslcImagine(m, cfg, in, weights, out);

    // Working set fits the SRF: clusters dominate, comm happened.
    EXPECT_GT(m.clusterBusy(), m.completionTime() / 2);
    EXPECT_GT(m.commOps(), 0u);
    // Section 4.3: ALU utilization around 25%.
    EXPECT_GT(m.aluUtilization(), 0.10);
    EXPECT_LT(m.aluUtilization(), 0.45);
}

} // namespace
} // namespace triarch::imagine

// Re-opened for the completed Section 4.3 alternative mapping.
namespace triarch::imagine
{
namespace
{

TEST(ImagineKernels, IndependentFftCslcMatchesReference)
{
    ImagineMachine m;
    kernels::CslcConfig cfg;
    cfg.subBands = 5;   // odd count exercises the tail single band
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {100, 351}, 17);
    auto weights = kernels::estimateWeights(cfg, in);
    auto ref = kernels::cslcReference(cfg, in, weights,
                                      kernels::FftAlgo::Mixed128);

    kernels::CslcOutput out;
    const Cycles cycles =
        cslcImagineIndependent(m, cfg, in, weights, out);
    EXPECT_GT(cycles, 0u);

    double maxErr = 0.0;
    for (unsigned mc = 0; mc < cfg.mainChannels; ++mc) {
        for (std::size_t i = 0; i < ref.main[mc].size(); ++i) {
            maxErr = std::max<double>(
                maxErr, std::abs(ref.main[mc][i] - out.main[mc][i]));
        }
    }
    EXPECT_LT(maxErr, 1e-5);
}

TEST(ImagineKernels, IndependentFftFasterAndCommFree)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 16;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {70}, 5);
    auto weights = kernels::estimateWeights(cfg, in);

    ImagineMachine parallel, independent;
    kernels::CslcOutput out;
    const Cycles base = cslcImagine(parallel, cfg, in, weights, out);
    const Cycles indep =
        cslcImagineIndependent(independent, cfg, in, weights, out);

    // Section 4.3: eliminating inter-cluster communication helps.
    EXPECT_LT(indep, base);
    EXPECT_EQ(independent.commOps(), 0u);
    EXPECT_GT(parallel.commOps(), 0u);
}

} // namespace
} // namespace triarch::imagine
