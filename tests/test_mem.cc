/**
 * @file
 * Unit tests for the memory substrate: DRAM timing (row hits/misses,
 * bank interleaving, bus occupancy), the set-associative cache, the
 * TLB, and bandwidth ports.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/port.hh"

namespace triarch::mem
{
namespace
{

DramConfig
smallDram()
{
    DramConfig cfg;
    cfg.name = "test_dram";
    cfg.banks = 4;
    cfg.rowBytes = 256;
    cfg.bankInterleaveBytes = 256;
    cfg.timing = {2, 3, 3, 2};  // tCas, tRcd, tRp, 2 words/cycle
    return cfg;
}

TEST(Dram, FirstAccessPaysRowOpen)
{
    DramModel dram(smallDram());
    auto w = dram.access(0, 2, 0);
    // tRp + tRcd + tCas = 8, then 1 transfer cycle for 2 words.
    EXPECT_EQ(w.start, 8u);
    EXPECT_EQ(w.finish, 9u);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 0u);
}

TEST(Dram, OpenRowHitSkipsPrecharge)
{
    DramModel dram(smallDram());
    dram.access(0, 2, 0);
    const Cycles before = dram.busFreeAt();
    auto w = dram.access(8, 2, before);
    // Same row: only CAS then transfer.
    EXPECT_EQ(w.finish, before + 2 + 1);
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST(Dram, RowConflictPaysPrechargeAgain)
{
    DramModel dram(smallDram());
    dram.access(0, 2, 0);
    // Same bank (stride = banks * interleave), different row.
    auto w = dram.access(4 * 256, 2, dram.busFreeAt());
    EXPECT_EQ(dram.rowMisses(), 2u);
    EXPECT_GT(w.start, dram.rowHits());
}

TEST(Dram, SequentialStreamApproachesBusBandwidth)
{
    DramConfig cfg = smallDram();
    cfg.timing.busWordsPerCycle = 8;
    DramModel dram(cfg);

    // Stream 64 KB sequentially in row-sized bursts. All requests
    // are known up front (DMA-style), so they queue at cycle 0 and
    // the bank/bus state serializes them.
    const unsigned rows = 256;
    Cycles t = 0;
    for (unsigned r = 0; r < rows; ++r) {
        auto w = dram.access(r * 256, 64, 0);
        t = w.finish;
    }
    const std::uint64_t words = rows * 64;
    const double wordsPerCycle = static_cast<double>(words) / t;
    // Row opens rotate across 4 banks and overlap the bus; we should
    // land close to the 8 words/cycle bus limit.
    EXPECT_GT(wordsPerCycle, 6.0);
    EXPECT_LE(wordsPerCycle, 8.0);
}

TEST(Dram, RandomAccessIsRowMissBound)
{
    DramModel dram(smallDram());
    Cycles t = 0;
    // Hit the same bank with alternating rows: every access misses.
    for (unsigned i = 0; i < 100; ++i) {
        auto w = dram.access((i % 2) * 4 * 256, 1, t);
        t = w.finish;
    }
    EXPECT_EQ(dram.rowMisses(), 100u);
    // Each access pays at least tRp + tRcd + tCas + transfer.
    EXPECT_GE(t, 100u * 9u);
}

TEST(Dram, StridedHelperCountsAllAccesses)
{
    DramModel dram(smallDram());
    auto w = dram.accessStrided(0, 1024, 16, 1, 0);
    EXPECT_GT(w.finish, 0u);
    EXPECT_EQ(dram.rowHits() + dram.rowMisses(), 16u);
}

TEST(Dram, ResetClearsRowState)
{
    DramModel dram(smallDram());
    dram.access(0, 1, 0);
    dram.resetState();
    EXPECT_EQ(dram.busFreeAt(), 0u);
    dram.access(0, 1, 0);
    EXPECT_EQ(dram.rowMisses(), 2u);    // stats survive, rows do not
}

TEST(Dram, MultiRowBurstSplits)
{
    DramModel dram(smallDram());
    // 256-byte rows = 64 words; a 100-word burst spans two rows.
    dram.access(0, 100, 0);
    EXPECT_EQ(dram.rowHits() + dram.rowMisses(), 2u);
}

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.name = "test_cache";
    cfg.sizeBytes = 1024;
    cfg.assoc = 2;
    cfg.lineBytes = 32;     // 16 sets
    return cfg;
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x11C, false).hit);    // same line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEvictionOrder)
{
    SetAssocCache cache(smallCache());
    // Three lines mapping to the same set (16 sets * 32B = 512B way).
    const Addr a = 0x0, b = 0x200, c = 0x400;
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false);     // a is now MRU
    cache.access(c, false);     // evicts b (LRU)
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    SetAssocCache cache(smallCache());
    cache.access(0x0, true);
    cache.access(0x200, false);
    auto r = cache.access(0x400, false);    // evicts dirty 0x0
    ASSERT_TRUE(r.writebackAddr.has_value());
    EXPECT_EQ(*r.writebackAddr, 0x0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    SetAssocCache cache(smallCache());
    cache.access(0x0, false);
    cache.access(0x200, false);
    auto r = cache.access(0x400, false);
    EXPECT_FALSE(r.writebackAddr.has_value());
}

TEST(Cache, WriteHitMarksDirty)
{
    SetAssocCache cache(smallCache());
    cache.access(0x0, false);
    cache.access(0x0, true);    // hit, marks dirty
    cache.access(0x200, false);
    auto r = cache.access(0x400, false);
    ASSERT_TRUE(r.writebackAddr.has_value());
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssocCache cache(smallCache());
    cache.access(0x40, true);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x40));
}

TEST(Cache, MissRate)
{
    SetAssocCache cache(smallCache());
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.25);
}

TEST(Cache, StreamingWorkloadMissesOncePerLine)
{
    SetAssocCache cache(smallCache());
    for (Addr a = 0; a < 512; a += 4)
        cache.access(a, false);
    EXPECT_EQ(cache.misses(), 512u / 32u);
    EXPECT_EQ(cache.hits(), 512u / 4u - 512u / 32u);
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb("t", 4, 4096, 25);
    EXPECT_EQ(tlb.access(0x1000), 25u);
    EXPECT_EQ(tlb.access(0x1FFC), 0u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb("t", 2, 4096, 10);
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x0000);         // page 0 MRU
    tlb.access(0x2000);         // evicts page 1
    EXPECT_EQ(tlb.access(0x0000), 0u);
    EXPECT_EQ(tlb.access(0x1000), 10u);
}

TEST(Tlb, FlushForgetsAll)
{
    Tlb tlb("t", 4, 4096, 25);
    tlb.access(0x0);
    tlb.flush();
    EXPECT_EQ(tlb.access(0x0), 25u);
}

TEST(Port, TransferTimeMatchesRate)
{
    BandwidthPort port("p", 2, 1);      // 2 words/cycle
    EXPECT_EQ(port.transferTime(8), 4u);
    BandwidthPort slow("s", 1, 5);      // 0.2 words/cycle
    EXPECT_EQ(slow.transferTime(2), 10u);
}

TEST(Port, SerializesOverlappingRequests)
{
    BandwidthPort port("p", 1, 1);
    EXPECT_EQ(port.transfer(10, 0), 10u);
    EXPECT_EQ(port.transfer(10, 5), 20u);   // must wait for first
    EXPECT_EQ(port.transfer(10, 100), 110u);
    EXPECT_EQ(port.wordsMoved(), 30u);
}

TEST(Port, ResetState)
{
    BandwidthPort port("p", 1, 1);
    port.transfer(10, 0);
    port.resetState();
    EXPECT_EQ(port.freeAt(), 0u);
}

} // namespace
} // namespace triarch::mem
