/**
 * @file
 * Tests for the reference kernels: corner turn properties, beam
 * steering semantics, and the CSLC pipeline (including actual jammer
 * cancellation on synthetic data).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/beam_steering.hh"
#include "kernels/corner_turn.hh"
#include "kernels/cslc.hh"

namespace triarch::kernels
{
namespace
{

TEST(CornerTurn, NaiveTransposeCorrect)
{
    WordMatrix src(3, 5);
    fillMatrix(src, 1);
    WordMatrix dst(5, 3);
    transposeNaive(src, dst);
    EXPECT_TRUE(isTransposeOf(src, dst));
}

TEST(CornerTurn, TransposeIsInvolution)
{
    WordMatrix src(16, 8);
    fillMatrix(src, 2);
    WordMatrix once(8, 16), twice(16, 8);
    transposeNaive(src, once);
    transposeNaive(once, twice);
    EXPECT_EQ(src, twice);
}

class BlockSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BlockSizes, BlockedMatchesNaive)
{
    WordMatrix src(96, 64);
    fillMatrix(src, 3);
    WordMatrix naive(64, 96), blocked(64, 96);
    transposeNaive(src, naive);
    transposeBlocked(src, blocked, GetParam());
    EXPECT_EQ(naive, blocked);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockSizes,
                         ::testing::Values(1u, 3u, 8u, 16u, 64u, 100u));

TEST(CornerTurn, FillIsDeterministicAndSeedSensitive)
{
    WordMatrix a(8, 8), b(8, 8), c(8, 8);
    fillMatrix(a, 42);
    fillMatrix(b, 42);
    fillMatrix(c, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(CornerTurn, IsTransposeDetectsShapeMismatch)
{
    WordMatrix src(4, 6), bad(4, 6);
    EXPECT_FALSE(isTransposeOf(src, bad));
}

TEST(CornerTurn, IsTransposeDetectsValueMismatch)
{
    WordMatrix src(4, 4);
    fillMatrix(src, 9);
    WordMatrix dst(4, 4);
    transposeNaive(src, dst);
    dst.at(2, 3) ^= 1;
    EXPECT_FALSE(isTransposeOf(src, dst));
}

TEST(BeamSteering, OutputCountMatchesConfig)
{
    BeamConfig cfg;
    cfg.elements = 10;
    cfg.directions = 3;
    cfg.dwells = 2;
    auto tables = makeBeamTables(cfg, 1);
    auto out = beamSteerReference(cfg, tables);
    EXPECT_EQ(out.size(), 60u);
}

TEST(BeamSteering, MatchesHandComputedValue)
{
    BeamConfig cfg;
    cfg.elements = 2;
    cfg.directions = 1;
    cfg.dwells = 1;
    cfg.shift = 2;

    BeamTables t;
    t.calCoarse = {100, 200};
    t.calFine = {10, 20};
    t.steerBase = {1000};
    t.steerDelta = {4};
    t.dwellOffset = {40};
    t.bias = 2;

    auto out = beamSteerReference(cfg, t);
    // e=0: acc=1004; t=110+1004+40+2=1156; >>2 = 289
    // e=1: acc=1008; t=220+1008+40+2=1270; >>2 = 317
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 289);
    EXPECT_EQ(out[1], 317);
}

TEST(BeamSteering, NegativeValuesShiftArithmetically)
{
    BeamConfig cfg;
    cfg.elements = 1;
    cfg.directions = 1;
    cfg.dwells = 1;
    cfg.shift = 4;

    BeamTables t;
    t.calCoarse = {-1000};
    t.calFine = {0};
    t.steerBase = {0};
    t.steerDelta = {0};
    t.dwellOffset = {0};
    t.bias = 0;

    auto out = beamSteerReference(cfg, t);
    EXPECT_EQ(out[0], -1000 >> 4);
    EXPECT_LT(out[0], 0);
}

TEST(BeamSteering, PaperConfigShape)
{
    BeamConfig cfg;
    EXPECT_EQ(cfg.elements, 1608u);
    EXPECT_EQ(cfg.directions, 4u);
    EXPECT_EQ(cfg.outputs(), 1608u * 4 * 8);
}

TEST(Cslc, SubBandTilingCoversInterval)
{
    CslcConfig cfg;
    EXPECT_EQ((cfg.subBands - 1) * cfg.subBandStride + cfg.subBandLen,
              cfg.samples);
    EXPECT_EQ(cfg.transforms(), 73u * 6);
}

class CslcPipeline : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cfg = new CslcConfig();
        in = new CslcInput(
            makeJammedInput(*cfg, {300, 1700, 4090}, 11));
        weights = new CslcWeights(estimateWeights(*cfg, *in));
        out = new CslcOutput(cslcReference(*cfg, *in, *weights));
    }

    static void
    TearDownTestSuite()
    {
        delete out;
        delete weights;
        delete in;
        delete cfg;
    }

    static CslcConfig *cfg;
    static CslcInput *in;
    static CslcWeights *weights;
    static CslcOutput *out;
};

CslcConfig *CslcPipeline::cfg = nullptr;
CslcInput *CslcPipeline::in = nullptr;
CslcWeights *CslcPipeline::weights = nullptr;
CslcOutput *CslcPipeline::out = nullptr;

TEST_F(CslcPipeline, InputHasJammerDominatedPower)
{
    double mainPower = 0.0;
    for (const auto &v : in->main[0])
        mainPower += std::norm(v);
    mainPower /= cfg->samples;
    // Three unit-amplitude jammers dominate the 0.05-amplitude signal.
    EXPECT_GT(mainPower, 1.0);
}

TEST_F(CslcPipeline, CancellationDepthExceeds15dB)
{
    const double depth = cancellationDepthDb(*cfg, *in, *out);
    EXPECT_GT(depth, 15.0);
}

TEST_F(CslcPipeline, SignalOfInterestSurvives)
{
    // Output power should be near the signal-only level, far above
    // zero (the canceller must not null the whole band).
    double outPower = 0.0;
    for (const auto &v : out->main[0])
        outPower += std::norm(v);
    outPower /= out->main[0].size();
    const double signalPower = 2.0 * (0.05 * 0.05) / 3.0;  // E[re^2+im^2]
    EXPECT_GT(outPower, 0.05 * signalPower);
    EXPECT_LT(outPower, 20.0 * signalPower);
}

TEST_F(CslcPipeline, OutputShape)
{
    ASSERT_EQ(out->main.size(), cfg->mainChannels);
    EXPECT_EQ(out->main[0].size(),
              static_cast<std::size_t>(cfg->subBands) * cfg->subBandLen);
}

TEST(Cslc, ZeroWeightsPassMainThrough)
{
    CslcConfig cfg;
    cfg.subBands = 3;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = makeJammedInput(cfg, {50}, 21);

    CslcWeights zero;
    zero.w.assign(cfg.mainChannels,
        std::vector<std::vector<cfloat>>(cfg.auxChannels,
            std::vector<cfloat>(cfg.subBands * 128ULL, cfloat(0, 0))));

    auto out = cslcReference(cfg, in, zero);
    // With zero weights the output is FFT->IFFT of the input blocks.
    for (unsigned b = 0; b < cfg.subBands; ++b) {
        for (unsigned k = 0; k < cfg.subBandLen; ++k) {
            const cfloat expect =
                in.main[0][b * cfg.subBandStride + k];
            const cfloat got = out.main[0][b * 128ULL + k];
            EXPECT_NEAR(std::abs(got - expect), 0.0, 1e-3);
        }
    }
}

TEST(Cslc, FlopCountDominatedByTransforms)
{
    CslcConfig cfg;
    const std::uint64_t flops = cslcFlops(cfg);
    const std::uint64_t transformFlops =
        cfg.transforms() * mixed128Ops().flops();
    EXPECT_GT(flops, transformFlops);
    EXPECT_LT(flops - transformFlops, transformFlops / 4);
}

} // namespace
} // namespace triarch::kernels
