/**
 * @file
 * Tests for the hardware-counter observability layer (DESIGN D14):
 * the EpochSampler's shape and order-independence guarantees, the
 * triarch.hw.v1 round trip, the validating parser's rejection of
 * malformed or inconsistent documents, and the end-to-end
 * determinism contracts — the rendered report is bit-identical at
 * any worker-thread count, under the Span and Reference memory
 * models (including the fuzz boundary configs), and under the Raw
 * event and reference steppers.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "mem/mem_mode.hh"
#include "raw/config.hh"
#include "sim/hw_report.hh"
#include "study/config_check.hh"
#include "study/fuzz.hh"
#include "study/parallel.hh"

// --- EpochSampler ----------------------------------------------------

namespace triarch::hw
{
namespace
{

std::uint64_t
channelSum(const HwTimeline &t, std::size_t channel)
{
    const auto &counts = t.channels[channel].counts;
    return std::accumulate(counts.begin(), counts.end(),
                           std::uint64_t{0});
}

TEST(EpochSamplerTest, FinalizeShapesTheTimeline)
{
    EpochSampler s({"busy"});
    for (Cycles c = 0; c < 1000; ++c)
        s.addAt(0, c);
    const HwTimeline t = s.finalize(1000);

    EXPECT_EQ(t.cycles, 1000u);
    // Smallest power of two with ceil(1000 / len) <= 64.
    EXPECT_EQ(t.epochCycles, 16u);
    ASSERT_EQ(t.channels.size(), 1u);
    EXPECT_EQ(t.channels[0].name, "busy");
    EXPECT_EQ(t.epochs(), 63u);
    EXPECT_EQ(channelSum(t, 0), 1000u) << "counts must be conserved";
    // Every full epoch saw exactly its length in events.
    for (std::size_t e = 0; e + 1 < t.epochs(); ++e)
        EXPECT_EQ(t.channels[0].counts[e], 16u) << "epoch " << e;
    EXPECT_EQ(t.channels[0].counts.back(), 1000u % 16);
}

TEST(EpochSamplerTest, GrowMergesSlotsPairwise)
{
    EpochSampler s({"busy"});
    for (Cycles c = 0; c < 64; ++c)
        s.addAt(0, c);
    s.addAt(0, 64);                 // forces one doubling
    const HwTimeline t = s.finalize(65);

    EXPECT_EQ(t.epochCycles, 2u);
    EXPECT_EQ(t.epochs(), 33u);
    for (std::size_t e = 0; e < 32; ++e)
        EXPECT_EQ(t.channels[0].counts[e], 2u) << "epoch " << e;
    EXPECT_EQ(t.channels[0].counts[32], 1u);
}

TEST(EpochSamplerTest, ResultIsOrderIndependent)
{
    // Same multiset of additions, wildly different orders — with
    // growth happening at different points in each schedule. This is
    // the property the Raw co-batch stepper depends on.
    EpochSampler forward({"a", "b"});
    forward.addRange(0, 0, 100);
    forward.addAt(1, 900, 7);
    forward.addRange(0, 500, 700);
    forward.addAt(0, 999);

    EpochSampler shuffled({"a", "b"});
    shuffled.addAt(0, 999);         // grows the epoch length first
    for (Cycles c = 500; c < 700; ++c)
        shuffled.addAt(0, c);       // per-cycle instead of one range
    shuffled.addAt(1, 900, 3);
    shuffled.addAt(1, 900, 4);      // split count
    shuffled.addRange(0, 0, 100);

    EXPECT_EQ(forward.finalize(1000), shuffled.finalize(1000));
}

TEST(EpochSamplerTest, AddRangeSplitsExactlyAcrossEpochs)
{
    EpochSampler range({"a"});
    EpochSampler loop({"a"});
    range.addAt(0, 1023, 0);        // pin both to epoch length 16
    loop.addAt(0, 1023, 0);
    range.addRange(0, 10, 250);
    for (Cycles c = 10; c < 250; ++c)
        loop.addAt(0, c);
    const HwTimeline rt = range.finalize(1024);
    EXPECT_EQ(rt, loop.finalize(1024));
    EXPECT_EQ(channelSum(rt, 0), 240u);
}

TEST(EpochSamplerTest, EventsPastTotalFoldIntoTheLastEpoch)
{
    // Fractional-clock machines (PPC) can round one sample past the
    // llround()ed total; the count lands in the final epoch instead
    // of vanishing.
    EpochSampler s({"a"});
    s.addAt(0, 5);
    s.addAt(0, 1000);               // shift 4; slot 62
    const HwTimeline t = s.finalize(990);
    EXPECT_EQ(t.epochs(), 62u);     // ceil(990 / 16)
    EXPECT_EQ(channelSum(t, 0), 2u);
    EXPECT_EQ(t.channels[0].counts.back(), 1u);
}

TEST(EpochSamplerTest, ResetAndZeroTotal)
{
    EpochSampler s({"a", "b"});
    s.addRange(0, 0, 500);
    s.reset();
    const HwTimeline t = s.finalize(0);
    EXPECT_EQ(t.cycles, 0u);
    ASSERT_EQ(t.channels.size(), 2u);
    EXPECT_EQ(t.epochs(), 0u);
    EXPECT_TRUE(t.channels[0].counts.empty());
    EXPECT_EQ(t.channels[1].name, "b");
}

// --- Round trip + malformed rejection --------------------------------

/** A fully consistent one-cell report. */
HwReport
makeValidReport()
{
    HwCell cell;
    cell.machine = "viram";
    cell.kernel = "ct";
    cell.cycles = 100;
    cell.breakdown.cycles = {10, 5, 80, 3, 2};  // DramDma dominates
    cell.breakdown.total = 100;
    cell.metrics.push_back({"row_miss_rate", 0.51, true});
    cell.metrics.push_back({"mem_words_per_cycle", 4.25, false});
    cell.verdict = {"dram", stats::CycleCategory::DramDma,
                    "bound by DRAM row misses, row miss rate 0.51"};
    cell.timeline.cycles = 100;
    cell.timeline.epochCycles = 2;
    cell.timeline.channels.push_back(
        {"vmu_busy", std::vector<std::uint64_t>(50, 1)});

    HwReport report;
    report.configHash = "deadbeef";
    report.cells.push_back(std::move(cell));
    return report;
}

TEST(HwReportRoundTrip, PrettyAndCompactPreserveEverything)
{
    const HwReport report = makeValidReport();

    std::string error;
    const auto pretty =
        parseHwReport(renderHwReport(report), &error);
    ASSERT_TRUE(pretty) << error;
    EXPECT_EQ(*pretty, report);

    const std::string compact = renderHwReport(report, true);
    EXPECT_EQ(compact.find('\n'), std::string::npos)
        << "compact rendering must be a single line (wire format)";
    const auto reparsed = parseHwReport(compact, &error);
    ASSERT_TRUE(reparsed) << error;
    EXPECT_EQ(*reparsed, report);
}

TEST(HwReportRoundTrip, EmptyReportAndOmittedConfigHash)
{
    HwReport report;
    std::string error;
    const std::string text = renderHwReport(report);
    EXPECT_EQ(text.find("config_hash"), std::string::npos);
    const auto parsed = parseHwReport(text, &error);
    ASSERT_TRUE(parsed) << error;
    EXPECT_EQ(*parsed, report);
}

/** parseHwReport must fail and mention @p needle. */
void
expectRejected(const HwReport &report, const std::string &needle)
{
    std::string error;
    const auto parsed = parseHwReport(renderHwReport(report), &error);
    EXPECT_FALSE(parsed) << "accepted a report that should fail ("
                         << needle << ")";
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error was: " << error;
}

TEST(HwReportValidation, RejectsEverySemanticViolation)
{
    {
        // Rate metric outside [0, 1].
        HwReport bad = makeValidReport();
        bad.cells[0].metrics[0].value = 1.5;
        expectRejected(bad, "outside [0, 1]");
    }
    {
        // Non-rate metrics may exceed 1 — control: still parses.
        HwReport ok = makeValidReport();
        ok.cells[0].metrics[1].value = 123.0;
        std::string error;
        EXPECT_TRUE(parseHwReport(renderHwReport(ok), &error))
            << error;
    }
    {
        // Breakdown no longer partitions the cycles.
        HwReport bad = makeValidReport();
        bad.cells[0].breakdown.cycles[0] += 1;
        expectRejected(bad, "sums to");
    }
    {
        // Verdict category contradicts the dominant category.
        HwReport bad = makeValidReport();
        bad.cells[0].verdict.category = stats::CycleCategory::Compute;
        bad.cells[0].verdict.component = "alu";
        expectRejected(bad, "contradicts");
    }
    {
        // Component belongs to a different category.
        HwReport bad = makeValidReport();
        bad.cells[0].verdict.component = "mesh";
        expectRejected(bad, "belongs to category");
    }
    {
        // Component nobody has heard of.
        HwReport bad = makeValidReport();
        bad.cells[0].verdict.component = "flux_capacitor";
        expectRejected(bad, "unknown verdict component");
    }
    {
        // Epoch length must be a power of two.
        HwReport bad = makeValidReport();
        bad.cells[0].timeline.epochCycles = 3;
        expectRejected(bad, "power of two");
    }
    {
        // Channel length must be ceil(cycles / epochCycles).
        HwReport bad = makeValidReport();
        bad.cells[0].timeline.channels[0].counts.pop_back();
        expectRejected(bad, "expected");
    }
    {
        // Epoch length too small for the run: too many epochs.
        HwReport bad = makeValidReport();
        bad.cells[0].timeline.epochCycles = 1;
        bad.cells[0].timeline.channels[0].counts.resize(100, 1);
        expectRejected(bad, "max");
    }
    {
        // Two cells with the same (machine, kernel).
        HwReport bad = makeValidReport();
        bad.cells.push_back(bad.cells[0]);
        expectRejected(bad, "duplicate cell");
    }
    {
        // Wrong schema tag.
        std::string text = renderHwReport(makeValidReport());
        const auto at = text.find("triarch.hw.v1");
        ASSERT_NE(at, std::string::npos);
        text.replace(at, 13, "triarch.hw.v9");
        std::string error;
        EXPECT_FALSE(parseHwReport(text, &error));
        EXPECT_NE(error.find("unsupported schema"), std::string::npos)
            << error;
    }
    {
        // Wrong epoch_slots.
        std::string text = renderHwReport(makeValidReport());
        const auto at = text.find("\"epoch_slots\": 64");
        ASSERT_NE(at, std::string::npos);
        text.replace(at, 17, "\"epoch_slots\": 32");
        std::string error;
        EXPECT_FALSE(parseHwReport(text, &error));
        EXPECT_NE(error.find("epoch_slots"), std::string::npos)
            << error;
    }
    {
        // Not JSON at all.
        std::string error;
        EXPECT_FALSE(parseHwReport("not json", &error));
        EXPECT_FALSE(error.empty());
    }
}

} // namespace
} // namespace triarch::hw

// --- End-to-end determinism ------------------------------------------

namespace triarch::study
{
namespace
{

/** The reduced workload from test_study.cc: fast but exercises all
 *  fifteen cells end to end. */
StudyConfig
smallConfig()
{
    StudyConfig cfg;
    cfg.matrixSize = 128;
    cfg.cslc.subBands = 8;
    cfg.cslc.samples = (cfg.cslc.subBands - 1) * cfg.cslc.subBandStride
                       + cfg.cslc.subBandLen;
    cfg.beam.elements = 256;
    cfg.beam.dwells = 2;
    cfg.jammerBins = {64, 200};
    return cfg;
}

/** RAII override of the process-wide default memory model. */
class MemModelOverride
{
  public:
    explicit MemModelOverride(mem::MemModel m)
        : saved(mem::defaultMemModel())
    {
        mem::setDefaultMemModel(m);
    }
    ~MemModelOverride() { mem::setDefaultMemModel(saved); }

  private:
    mem::MemModel saved;
};

/** RAII override of the process-wide default Raw stepper. */
class RawStepperOverride
{
  public:
    explicit RawStepperOverride(raw::RawStepper s)
        : saved(raw::defaultRawStepper())
    {
        raw::setDefaultRawStepper(s);
    }
    ~RawStepperOverride() { raw::setDefaultRawStepper(saved); }

  private:
    raw::RawStepper saved;
};

/** Run @p cells fresh (no cache) and return the rendered hw doc. */
std::string
hwDoc(const StudyConfig &cfg, const std::vector<Cell> &cells,
      unsigned threads)
{
    hw::HwRegistry::global().clear();
    ParallelRunner runner(cfg, threads, nullptr,
                          ParallelRunner::noCache());
    runner.runCells(cells);
    return hw::renderHwReport(hw::HwRegistry::global().report());
}

/** Every cell whose machine resolves cfg.memModel (D13). */
std::vector<Cell>
spanCells()
{
    std::vector<Cell> cells;
    for (const MachineId m :
         {MachineId::PpcScalar, MachineId::PpcAltivec,
          MachineId::Viram, MachineId::Imagine}) {
        for (const KernelId k :
             {KernelId::CornerTurn, KernelId::Cslc,
              KernelId::BeamSteering}) {
            cells.push_back({m, k});
        }
    }
    return cells;
}

TEST(HwReportDeterminism, BitIdenticalAcrossThreadCounts)
{
    const StudyConfig cfg = smallConfig();
    const std::vector<Cell> cells = allCells();
    const std::string at1 = hwDoc(cfg, cells, 1);
    const std::string at2 = hwDoc(cfg, cells, 2);
    const std::string at8 = hwDoc(cfg, cells, 8);
    EXPECT_EQ(at1, at2);
    EXPECT_EQ(at1, at8);

    // The document the full grid produces is valid by the strict
    // parser: every rate in range, every verdict consistent with its
    // D9 partition, every timeline exactly shaped.
    std::string error;
    const auto parsed = hw::parseHwReport(at1, &error);
    ASSERT_TRUE(parsed) << error;
    EXPECT_EQ(parsed->cells.size(), 15u);
    for (const hw::HwCell &cell : parsed->cells) {
        EXPECT_FALSE(cell.verdict.detail.empty())
            << cell.machine << "/" << cell.kernel;
        EXPECT_FALSE(cell.metrics.empty())
            << cell.machine << "/" << cell.kernel;
        EXPECT_GT(cell.timeline.epochs(), 0u)
            << cell.machine << "/" << cell.kernel;
    }
    hw::HwRegistry::global().clear();
}

TEST(HwReportDeterminism, SpanAndReferenceModelsAgree)
{
    // The D13 contract extended to the hardware counters: both
    // memory models must produce byte-identical hw documents, on the
    // default-shaped small config and across the fuzz sweep's
    // hand-written boundary configs.
    const std::vector<Cell> cells = spanCells();
    std::vector<StudyConfig> configs{smallConfig()};
    FuzzOptions opts;
    opts.randomConfigs = 0;
    for (const StudyConfig &cfg : enumerateFuzzConfigs(opts)) {
        if (validateConfig(cfg))
            continue;           // invalid-on-purpose boundary config
        configs.push_back(cfg);
        if (configs.size() == 4)
            break;              // keep the suite seconds-fast
    }
    ASSERT_GE(configs.size(), 3u);

    for (const StudyConfig &cfg : configs) {
        SCOPED_TRACE(describeConfig(cfg));
        std::string ref;
        {
            MemModelOverride guard(mem::MemModel::Reference);
            ref = hwDoc(cfg, cells, 1);
        }
        MemModelOverride guard(mem::MemModel::Span);
        for (const unsigned threads : {1u, 2u}) {
            EXPECT_EQ(hwDoc(cfg, cells, threads), ref)
                << threads << " threads";
        }
    }
    hw::HwRegistry::global().clear();
}

TEST(HwReportDeterminism, RawSteppersAgree)
{
    // The D12 contract extended to the hardware counters: the Raw
    // event stepper credits stall tallies in bulk ranges, the
    // reference stepper one cycle at a time — the epoch timelines
    // must still match bit for bit.
    const StudyConfig cfg = smallConfig();
    const std::vector<Cell> cells = {
        {MachineId::Raw, KernelId::CornerTurn},
        {MachineId::Raw, KernelId::Cslc},
        {MachineId::Raw, KernelId::BeamSteering}};
    std::string event, reference;
    {
        RawStepperOverride guard(raw::RawStepper::Event);
        event = hwDoc(cfg, cells, 1);
    }
    {
        RawStepperOverride guard(raw::RawStepper::Reference);
        reference = hwDoc(cfg, cells, 1);
    }
    EXPECT_EQ(event, reference);
    hw::HwRegistry::global().clear();
}

} // namespace
} // namespace triarch::study
