/**
 * @file
 * Tests for the PowerPC G4 + AltiVec baseline model: the issue and
 * memory timing primitives, cache-hierarchy behavior, and the
 * paper's Section 4.5 speedup structure (AltiVec ~6x on CSLC, ~2x
 * on beam steering, little on the bus-bound corner turn).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppc/kernels_ppc.hh"
#include "ppc/machine.hh"

namespace triarch::ppc
{
namespace
{

TEST(PpcMachine, IntIssueWidth)
{
    PpcMachine m;
    m.intOps(100);              // independent: 2 per cycle
    EXPECT_EQ(m.cycles(), 50u);
    m.resetTiming();
    m.intOps(100, true);        // dependent chain: 1 per cycle
    EXPECT_EQ(m.cycles(), 100u);
}

TEST(PpcMachine, FpChainLatency)
{
    PpcConfig cfg;
    PpcMachine m(cfg);
    m.fpOps(10, true);
    EXPECT_EQ(m.cycles(), 10 * cfg.fpChainLatency);
    m.resetTiming();
    m.fpOps(10, false);
    EXPECT_EQ(m.cycles(), 10u);
}

TEST(PpcMachine, CompiledFpPaysOperandTraffic)
{
    PpcConfig cfg;
    PpcMachine m(cfg);
    m.fpOpsCompiled(10);
    EXPECT_EQ(m.cycles(),
              10 * (cfg.fpChainLatency + cfg.fpMemOverhead));
}

TEST(PpcMachine, LoadHitVsMissLatency)
{
    PpcConfig cfg;
    PpcMachine m(cfg);
    m.load(0x1000);             // cold miss: DRAM latency
    const Cycles miss = m.cycles();
    EXPECT_GE(miss, cfg.memLatency);
    m.load(0x1004);             // same line: L1 hit
    EXPECT_EQ(m.cycles() - miss, cfg.l1HitCycles);
}

TEST(PpcMachine, L2CatchesL1Evictions)
{
    PpcConfig cfg;
    PpcMachine m(cfg);
    // Touch more than L1 but less than L2, then re-touch.
    for (Addr a = 0; a < 64 * 1024; a += 32)
        m.load(a);
    const Cycles coldDone = m.cycles();
    m.load(0);                  // L1-evicted, L2 hit
    EXPECT_EQ(m.cycles() - coldDone, cfg.l2HitCycles);
}

TEST(PpcMachine, StoreMissesDoNotPayFullLatency)
{
    PpcConfig cfg;
    PpcMachine loads(cfg), stores(cfg);
    for (unsigned i = 0; i < 64; ++i)
        loads.load(i * 4096);
    for (unsigned i = 0; i < 64; ++i)
        stores.store(i * 4096);
    // Store misses drain through the store queue.
    EXPECT_LT(stores.cycles(), loads.cycles() / 3);
}

TEST(PpcMachine, SustainedStoresThrottleOnBus)
{
    PpcConfig cfg;
    PpcMachine m(cfg);
    // Far more store-miss traffic than the slack window hides.
    for (unsigned i = 0; i < 4096; ++i)
        m.store(i * 4096);
    // 4096 line fills at 0.8 words/cycle is ~41k bus cycles; the
    // store queue must have throttled execution to roughly that.
    EXPECT_GT(m.cycles(), 30000u);
}

TEST(PpcMachine, DescribeMentionsAltivec)
{
    PpcMachine m;
    EXPECT_NE(m.describe().find("AltiVec"), std::string::npos);
    EXPECT_NE(m.describe().find("front-side bus"), std::string::npos);
}

// ---------------------------------------------------------------
// Kernels: correctness + Section 4.5 structure.
// ---------------------------------------------------------------

TEST(PpcKernels, CornerTurnBothVariantsCorrect)
{
    kernels::WordMatrix src(128, 96);
    kernels::fillMatrix(src, 4);
    for (bool altivec : {false, true}) {
        PpcMachine m;
        kernels::WordMatrix dst;
        const Cycles cycles = cornerTurnPpc(m, src, dst, altivec);
        EXPECT_TRUE(kernels::isTransposeOf(src, dst));
        EXPECT_GT(cycles, 0u);
    }
}

TEST(PpcKernels, CornerTurnAltivecGainsLittle)
{
    kernels::WordMatrix src(512, 512);
    kernels::fillMatrix(src, 7);
    PpcMachine ms, mv;
    kernels::WordMatrix dst;
    const Cycles scalar = cornerTurnPpc(ms, src, dst, false);
    const Cycles vec = cornerTurnPpc(mv, src, dst, true);
    // Section 4.5: AltiVec "does not significantly improve" the
    // corner turn — bounded by memory, well under the 4x datapath.
    EXPECT_LT(scalar, 2 * vec);
    EXPECT_GE(scalar, vec);
}

TEST(PpcKernels, BeamSteeringBothVariantsMatchReference)
{
    kernels::BeamConfig cfg;
    cfg.elements = 256;
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, 3);
    auto ref = kernels::beamSteerReference(cfg, tables);
    for (bool altivec : {false, true}) {
        PpcMachine m;
        std::vector<std::int32_t> out;
        beamSteeringPpc(m, cfg, tables, out, altivec);
        EXPECT_EQ(out, ref);
    }
}

TEST(PpcKernels, BeamSteeringAltivecAboutTwoX)
{
    kernels::BeamConfig cfg;
    auto tables = kernels::makeBeamTables(cfg, 5);
    PpcMachine ms, mv;
    std::vector<std::int32_t> out;
    const Cycles scalar = beamSteeringPpc(ms, cfg, tables, out, false);
    const Cycles vec = beamSteeringPpc(mv, cfg, tables, out, true);
    const double gain = static_cast<double>(scalar) / vec;
    // Section 4.5: "about two for beam steering".
    EXPECT_GT(gain, 1.4);
    EXPECT_LT(gain, 2.6);
}

TEST(PpcKernels, CslcBothVariantsMatchReference)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 4;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {64}, 13);
    auto weights = kernels::estimateWeights(cfg, in);
    auto ref = kernels::cslcReference(cfg, in, weights,
                                      kernels::FftAlgo::Radix2);
    for (bool altivec : {false, true}) {
        PpcMachine m;
        kernels::CslcOutput out;
        cslcPpc(m, cfg, in, weights, out, altivec);
        double maxErr = 0.0;
        for (unsigned mc = 0; mc < cfg.mainChannels; ++mc) {
            for (std::size_t i = 0; i < ref.main[mc].size(); ++i) {
                maxErr = std::max<double>(
                    maxErr,
                    std::abs(ref.main[mc][i] - out.main[mc][i]));
            }
        }
        EXPECT_LT(maxErr, 2e-2);
    }
}

TEST(PpcKernels, CslcAltivecAboutSixX)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 8;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {99}, 21);
    auto weights = kernels::estimateWeights(cfg, in);
    PpcMachine ms, mv;
    kernels::CslcOutput out;
    const Cycles scalar = cslcPpc(ms, cfg, in, weights, out, false);
    const Cycles vec = cslcPpc(mv, cfg, in, weights, out, true);
    const double gain = static_cast<double>(scalar) / vec;
    // Section 4.5: "a performance factor of about six for the CSLC".
    EXPECT_GT(gain, 4.0);
    EXPECT_LT(gain, 8.0);
}

TEST(PpcKernels, CslcCancelsJammer)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 6;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {200}, 23);
    auto weights = kernels::estimateWeights(cfg, in);
    PpcMachine m;
    kernels::CslcOutput out;
    cslcPpc(m, cfg, in, weights, out, true);
    EXPECT_GT(kernels::cancellationDepthDb(cfg, in, out), 15.0);
}

} // namespace
} // namespace triarch::ppc
