/**
 * @file
 * Cross-module property tests: invariants that must hold across all
 * machine models and parameter sweeps —
 *
 *  - functional equivalence: every machine computes the same kernel
 *    outputs for the same inputs (bitwise for the integer kernels);
 *  - determinism: re-running a simulation yields identical cycles;
 *  - microarchitectural monotonicity: more of a resource never
 *    makes a kernel slower (address generators, memory engines,
 *    tiles, cache ways);
 *  - timing sanity: cycle counts scale with problem size.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "imagine/kernels_imagine.hh"
#include "kernels/fft.hh"
#include "mem/cache.hh"
#include "ppc/kernels_ppc.hh"
#include "raw/kernels_raw.hh"
#include "sim/rng.hh"
#include "viram/kernels_viram.hh"

namespace triarch
{
namespace
{

// ---------------------------------------------------------------
// Functional equivalence across machines.
// ---------------------------------------------------------------

class TransposeSizes
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(TransposeSizes, AllMachinesAgreeBitwise)
{
    const auto [rows, cols] = GetParam();
    kernels::WordMatrix src(rows, cols);
    kernels::fillMatrix(src, rows * 31 + cols);
    kernels::WordMatrix expect(cols, rows);
    kernels::transposeNaive(src, expect);

    {
        viram::ViramMachine m;
        kernels::WordMatrix dst;
        viram::cornerTurnViram(m, src, dst);
        EXPECT_EQ(dst, expect) << "viram " << rows << "x" << cols;
    }
    {
        imagine::ImagineMachine m;
        kernels::WordMatrix dst;
        imagine::cornerTurnImagine(m, src, dst);
        EXPECT_EQ(dst, expect) << "imagine " << rows << "x" << cols;
    }
    if (rows == cols) {
        raw::RawMachine m;
        kernels::WordMatrix dst;
        raw::cornerTurnRaw(m, src, dst);
        EXPECT_EQ(dst, expect) << "raw " << rows << "x" << cols;
    }
    for (bool altivec : {false, true}) {
        ppc::PpcMachine m;
        kernels::WordMatrix dst;
        ppc::cornerTurnPpc(m, src, dst, altivec);
        EXPECT_EQ(dst, expect) << "ppc " << rows << "x" << cols;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeSizes,
    ::testing::Values(std::pair{64u, 64u}, std::pair{128u, 128u},
                      std::pair{64u, 128u}, std::pair{192u, 64u},
                      std::pair{256u, 256u}));

class BeamElementCounts : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BeamElementCounts, AllMachinesAgreeBitwise)
{
    kernels::BeamConfig cfg;
    cfg.elements = GetParam();  // includes non-multiples of 64 and 16
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, GetParam());
    auto expect = kernels::beamSteerReference(cfg, tables);

    std::vector<std::int32_t> out;
    {
        viram::ViramMachine m;
        viram::beamSteeringViram(m, cfg, tables, out);
        EXPECT_EQ(out, expect) << "viram";
    }
    {
        imagine::ImagineMachine m;
        imagine::beamSteeringImagine(m, cfg, tables, out);
        EXPECT_EQ(out, expect) << "imagine";
    }
    {
        raw::RawMachine m;
        raw::beamSteeringRaw(m, cfg, tables, out);
        EXPECT_EQ(out, expect) << "raw";
    }
    for (bool altivec : {false, true}) {
        ppc::PpcMachine m;
        ppc::beamSteeringPpc(m, cfg, tables, out, altivec);
        EXPECT_EQ(out, expect) << "ppc";
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, BeamElementCounts,
                         ::testing::Values(17u, 64u, 100u, 129u, 402u,
                                           1608u));

class CslcJammerSets
    : public ::testing::TestWithParam<std::vector<unsigned>>
{
};

TEST_P(CslcJammerSets, AllMachinesCancelAndAgree)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 6;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, GetParam(), 99);
    auto weights = kernels::estimateWeights(cfg, in);
    auto refR2 = kernels::cslcReference(cfg, in, weights,
                                        kernels::FftAlgo::Radix2);
    auto refMx = kernels::cslcReference(cfg, in, weights,
                                        kernels::FftAlgo::Mixed128);

    auto rmsErr = [](const kernels::CslcOutput &a,
                     const kernels::CslcOutput &b) {
        double err = 0.0, n = 0.0;
        for (unsigned m = 0; m < a.main.size(); ++m) {
            for (std::size_t i = 0; i < a.main[m].size(); ++i) {
                err += std::norm(a.main[m][i] - b.main[m][i]);
                n += 1.0;
            }
        }
        return std::sqrt(err / n);
    };

    kernels::CslcOutput out;
    {
        viram::ViramMachine m;
        viram::cslcViram(m, cfg, in, weights, out);
        EXPECT_LT(rmsErr(out, refR2), 2e-3) << "viram";
        EXPECT_GT(kernels::cancellationDepthDb(cfg, in, out), 12.0);
    }
    {
        imagine::ImagineMachine m;
        imagine::cslcImagine(m, cfg, in, weights, out);
        EXPECT_LT(rmsErr(out, refMx), 1e-6) << "imagine";
    }
    {
        raw::RawMachine m;
        raw::cslcRaw(m, cfg, in, weights, out);
        EXPECT_LT(rmsErr(out, refR2), 2e-3) << "raw";
    }
    {
        raw::RawMachine m;
        raw::cslcRawStreamed(m, cfg, in, weights, out);
        EXPECT_LT(rmsErr(out, refR2), 2e-3) << "raw streamed";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Jammers, CslcJammerSets,
    ::testing::Values(std::vector<unsigned>{100},
                      std::vector<unsigned>{50, 300},
                      std::vector<unsigned>{10, 333, 600}));

// ---------------------------------------------------------------
// Determinism: identical runs give identical cycle counts.
// ---------------------------------------------------------------

TEST(Determinism, ViramCornerTurn)
{
    kernels::WordMatrix src(128, 64);
    kernels::fillMatrix(src, 1);
    kernels::WordMatrix dst;
    viram::ViramMachine m1, m2;
    EXPECT_EQ(viram::cornerTurnViram(m1, src, dst),
              viram::cornerTurnViram(m2, src, dst));
}

TEST(Determinism, ImagineBeamSteering)
{
    kernels::BeamConfig cfg;
    cfg.elements = 200;
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, 2);
    std::vector<std::int32_t> out;
    imagine::ImagineMachine m1, m2;
    EXPECT_EQ(imagine::beamSteeringImagine(m1, cfg, tables, out),
              imagine::beamSteeringImagine(m2, cfg, tables, out));
}

TEST(Determinism, RawCslc)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 4;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {80}, 7);
    auto weights = kernels::estimateWeights(cfg, in);
    kernels::CslcOutput out;
    raw::RawMachine m1, m2;
    EXPECT_EQ(raw::cslcRaw(m1, cfg, in, weights, out).cycles,
              raw::cslcRaw(m2, cfg, in, weights, out).cycles);
}

TEST(Determinism, PpcCslc)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 3;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {90}, 8);
    auto weights = kernels::estimateWeights(cfg, in);
    kernels::CslcOutput out;
    ppc::PpcMachine m1, m2;
    EXPECT_EQ(ppc::cslcPpc(m1, cfg, in, weights, out, true),
              ppc::cslcPpc(m2, cfg, in, weights, out, true));
}

// ---------------------------------------------------------------
// Resource monotonicity.
// ---------------------------------------------------------------

TEST(Monotonicity, ViramAddressGenerators)
{
    kernels::WordMatrix src(256, 128);
    kernels::fillMatrix(src, 3);
    kernels::WordMatrix dst;
    Cycles prev = ~Cycles{0};
    for (unsigned gens : {1u, 2u, 4u, 8u}) {
        viram::ViramConfig cfg;
        cfg.addrGens = gens;
        viram::ViramMachine m(cfg);
        const Cycles c = viram::cornerTurnViram(m, src, dst);
        EXPECT_LE(c, prev) << gens << " generators";
        prev = c;
    }
}

TEST(Monotonicity, ImagineMemoryEngines)
{
    kernels::WordMatrix src(128, 128);
    kernels::fillMatrix(src, 4);
    kernels::WordMatrix dst;
    Cycles prev = ~Cycles{0};
    for (unsigned engines : {1u, 2u, 4u}) {
        imagine::ImagineConfig cfg;
        cfg.memEngines = engines;
        imagine::ImagineMachine m(cfg);
        const Cycles c = imagine::cornerTurnImagine(m, src, dst);
        EXPECT_LE(c, prev) << engines << " engines";
        prev = c;
    }
}

TEST(Monotonicity, RawMeshSize)
{
    kernels::BeamConfig cfg;
    cfg.elements = 800;
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, 6);
    std::vector<std::int32_t> out;
    Cycles prev = ~Cycles{0};
    for (unsigned edge : {1u, 2u, 4u}) {
        raw::RawConfig rcfg;
        rcfg.meshWidth = edge;
        rcfg.meshHeight = edge;
        raw::RawMachine m(rcfg);
        const Cycles c = raw::beamSteeringRaw(m, cfg, tables, out);
        EXPECT_LT(c, prev) << edge << "x" << edge;
        prev = c;
    }
}

TEST(Monotonicity, CacheWaysNeverHurtLru)
{
    // LRU inclusion: with the set count fixed, adding ways can only
    // remove misses. Random trace over a small footprint.
    Rng rng(42);
    std::vector<Addr> trace(20000);
    for (auto &a : trace)
        a = (rng.nextBelow(1 << 14)) & ~3ULL;

    std::uint64_t prev = ~0ULL;
    for (unsigned assoc : {1u, 2u, 4u, 8u}) {
        mem::CacheConfig cfg;
        cfg.sizeBytes = 64u * 32 * assoc;   // 64 sets always
        cfg.assoc = assoc;
        cfg.lineBytes = 32;
        mem::SetAssocCache cache(cfg);
        for (Addr a : trace)
            cache.access(a, false);
        EXPECT_LE(cache.misses(), prev) << assoc << " ways";
        prev = cache.misses();
    }
}

TEST(Monotonicity, DramMoreBanksNeverSlower)
{
    Cycles prev = ~Cycles{0};
    for (unsigned banks : {1u, 2u, 4u, 8u}) {
        mem::DramConfig cfg;
        cfg.banks = banks;
        cfg.rowBytes = 512;
        cfg.bankInterleaveBytes = 512;
        cfg.timing = {2, 4, 4, 2};
        mem::DramModel dram(cfg);
        Cycles t = 0;
        for (unsigned i = 0; i < 512; ++i)
            t = dram.access(i * 512, 32, 0).finish;
        EXPECT_LE(t, prev) << banks << " banks";
        prev = t;
    }
}

// ---------------------------------------------------------------
// Problem-size scaling.
// ---------------------------------------------------------------

TEST(Scaling, CornerTurnCyclesGrowWithSize)
{
    kernels::WordMatrix dst;
    Cycles prevV = 0, prevR = 0;
    for (unsigned n : {64u, 128u, 256u}) {
        kernels::WordMatrix src(n, n);
        kernels::fillMatrix(src, n);
        viram::ViramMachine vm;
        const Cycles vc = viram::cornerTurnViram(vm, src, dst);
        EXPECT_GT(vc, prevV);
        prevV = vc;
        raw::RawMachine rm;
        const Cycles rc = raw::cornerTurnRaw(rm, src, dst);
        EXPECT_GT(rc, prevR);
        prevR = rc;
    }
}

TEST(Scaling, ViramCornerTurnRoughlyLinearInArea)
{
    kernels::WordMatrix dst;
    kernels::WordMatrix small(128, 128), big(256, 256);
    kernels::fillMatrix(small, 1);
    kernels::fillMatrix(big, 2);
    viram::ViramMachine m1, m2;
    const double ratio =
        static_cast<double>(viram::cornerTurnViram(m2, big, dst))
        / static_cast<double>(viram::cornerTurnViram(m1, small, dst));
    // 4x the elements: between 3x and 5x the cycles.
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

TEST(Scaling, BeamSteeringLinearInDwells)
{
    kernels::BeamConfig small, big;
    small.dwells = 2;
    big.dwells = 8;
    auto tablesS = kernels::makeBeamTables(small, 5);
    auto tablesB = kernels::makeBeamTables(big, 5);
    std::vector<std::int32_t> out;
    raw::RawMachine m1, m2;
    const Cycles cs = raw::beamSteeringRaw(m1, small, tablesS, out);
    const Cycles cb = raw::beamSteeringRaw(m2, big, tablesB, out);
    const double ratio = static_cast<double>(cb) / cs;
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

// ---------------------------------------------------------------
// FFT numerical properties across random signals.
// ---------------------------------------------------------------

class FftSeeds : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FftSeeds, ParsevalAndRoundTrip)
{
    Rng rng(GetParam());
    std::vector<kernels::cfloat> x(128);
    for (auto &v : x)
        v = {rng.nextSignedFloat(), rng.nextSignedFloat()};

    double timePower = 0.0;
    for (auto &v : x)
        timePower += std::norm(v);

    auto spec = x;
    kernels::fftMixed128(spec);
    double freqPower = 0.0;
    for (auto &v : spec)
        freqPower += std::norm(v);
    EXPECT_NEAR(freqPower / 128.0, timePower, 1e-3 * timePower);

    kernels::ifftMixed128(spec);
    double err = 0.0;
    for (unsigned i = 0; i < 128; ++i)
        err = std::max<double>(err, std::abs(spec[i] - x[i]));
    EXPECT_LT(err, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftSeeds,
                         ::testing::Range(100u, 112u));

} // namespace
} // namespace triarch

// Re-opened: the functional/timing separation property (DESIGN.md
// D1). Changing only timing parameters must never change what any
// machine computes — outputs are bitwise invariant while cycle
// counts move.
namespace triarch
{
namespace
{

TEST(TimingFunctionalSeparation, ViramConfigsDontChangeOutputs)
{
    kernels::WordMatrix src(128, 64);
    kernels::fillMatrix(src, 9);

    viram::ViramMachine base;
    kernels::WordMatrix expect;
    const Cycles baseCycles =
        viram::cornerTurnViram(base, src, expect);

    viram::ViramConfig slow;
    slow.arithStartup = 20;
    slow.memStartup = 50;
    slow.chainLatency = 1000;
    slow.addrGens = 1;
    slow.rowMissCycles = 10;
    slow.tlbMissPenalty = 100;
    viram::ViramMachine m(slow);
    kernels::WordMatrix dst;
    const Cycles slowCycles = viram::cornerTurnViram(m, src, dst);

    EXPECT_EQ(dst, expect);             // bitwise identical output
    EXPECT_GT(slowCycles, baseCycles);  // but very different timing
}

TEST(TimingFunctionalSeparation, RawConfigsDontChangeOutputs)
{
    kernels::CslcConfig cfg;
    cfg.subBands = 4;
    cfg.samples = (cfg.subBands - 1) * cfg.subBandStride
                  + cfg.subBandLen;
    auto in = kernels::makeJammedInput(cfg, {60}, 12);
    auto weights = kernels::estimateWeights(cfg, in);

    raw::RawMachine base;
    kernels::CslcOutput expect;
    auto baseResult = raw::cslcRaw(base, cfg, in, weights, expect);

    raw::RawConfig slow;
    slow.fpLatency = 9;
    slow.loadLatency = 8;
    slow.cacheMissPenalty = 100;
    slow.netBaseLatency = 10;
    slow.fifoCapacity = 2;
    raw::RawMachine m(slow);
    kernels::CslcOutput out;
    auto slowResult = raw::cslcRaw(m, cfg, in, weights, out);

    for (unsigned mc = 0; mc < 2; ++mc)
        EXPECT_EQ(out.main[mc], expect.main[mc]);
    EXPECT_GT(slowResult.cycles, baseResult.cycles);
}

TEST(TimingFunctionalSeparation, ImagineConfigsDontChangeOutputs)
{
    kernels::BeamConfig cfg;
    cfg.elements = 300;
    cfg.dwells = 2;
    auto tables = kernels::makeBeamTables(cfg, 14);

    imagine::ImagineMachine base;
    std::vector<std::int32_t> expect;
    const Cycles baseCycles =
        imagine::beamSteeringImagine(base, cfg, tables, expect);

    imagine::ImagineConfig slow;
    slow.hostIssueCycles = 200;
    slow.streamDescRegs = 1;
    slow.srfWordsPerClusterCycle = 1;
    imagine::ImagineMachine m(slow);
    std::vector<std::int32_t> out;
    const Cycles slowCycles =
        imagine::beamSteeringImagine(m, cfg, tables, out);

    EXPECT_EQ(out, expect);
    EXPECT_GT(slowCycles, baseCycles);
}

TEST(TimingFunctionalSeparation, PpcConfigsDontChangeOutputs)
{
    kernels::WordMatrix src(96, 96);
    kernels::fillMatrix(src, 15);

    ppc::PpcMachine base;
    kernels::WordMatrix expect;
    const Cycles baseCycles =
        ppc::cornerTurnPpc(base, src, expect, true);

    ppc::PpcConfig slow;
    slow.memLatency = 500;
    slow.fpChainLatency = 20;
    slow.l1Bytes = 4096;
    ppc::PpcMachine m(slow);
    kernels::WordMatrix dst;
    const Cycles slowCycles = ppc::cornerTurnPpc(m, src, dst, true);

    EXPECT_EQ(dst, expect);
    EXPECT_GT(slowCycles, baseCycles);
}

// Raw corner turn with block-row counts that do not divide the
// tile count (some tiles idle, work still correct).
class RawOddGrids : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RawOddGrids, CornerTurnCorrectWithIdleTiles)
{
    const unsigned n = GetParam();
    kernels::WordMatrix src(n, n);
    kernels::fillMatrix(src, n);
    raw::RawMachine m;
    kernels::WordMatrix dst;
    raw::cornerTurnRaw(m, src, dst);
    EXPECT_TRUE(kernels::isTransposeOf(src, dst));
}

INSTANTIATE_TEST_SUITE_P(Grids, RawOddGrids,
                         ::testing::Values(64u, 192u, 320u, 1088u));

} // namespace
} // namespace triarch
