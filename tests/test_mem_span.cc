/**
 * @file
 * Differential tests for the span-batched memory model (DESIGN D13).
 * Span mode — way-predicted cache hits, TLB page runs, closed-form
 * DRAM record patterns, bulk span classification in the machine
 * models — is an optimization of the word-at-a-time reference walks,
 * never a semantic change: every primitive and every study-level
 * PPC/AltiVec/VIRAM/Imagine cell must produce bit-identical timing,
 * statistics, and D9 cycle partitions under both models, serially
 * and at every thread count (mirroring the Raw stepper contract in
 * test_raw_event.cc).
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_mode.hh"
#include "sim/rng.hh"
#include "study/fuzz.hh"
#include "study/parallel.hh"

// --- Primitive-level equivalence --------------------------------------

namespace triarch::mem
{
namespace
{

TEST(MemSpanPrimitives, CacheAccessFastMatchesAccess)
{
    // Drive one cache through the way-predicted prefilter (fast hit
    // or fall back to the full access) and a twin through access()
    // alone; state and counters must stay identical throughout.
    const CacheConfig cfg{"t.l1", 4 * 1024, 4, 32};
    SetAssocCache fast(cfg), ref(cfg);
    Rng rng(42);
    for (unsigned i = 0; i < 20000; ++i) {
        // A mix of streaming runs (memo hits), set-thrashing strides
        // (memo misses + evictions), and random probes.
        Addr a;
        switch (i % 3) {
          case 0: a = (i / 3) * 4 % 8192; break;
          case 1: a = (i % 64) * 4096; break;
          default: a = rng.nextBelow(64 * 1024) & ~Addr{3}; break;
        }
        const bool w = (rng.next() & 1) != 0;
        if (!fast.accessFast(a, w)) {
            const auto rf = fast.access(a, w);
            const auto rr = ref.access(a, w);
            EXPECT_EQ(rf.hit, rr.hit) << "access " << i;
            EXPECT_EQ(rf.writebackAddr, rr.writebackAddr)
                << "access " << i;
        } else {
            EXPECT_TRUE(ref.access(a, w).hit) << "access " << i;
        }
        ASSERT_EQ(fast.hits(), ref.hits()) << "access " << i;
        ASSERT_EQ(fast.misses(), ref.misses()) << "access " << i;
        ASSERT_EQ(fast.writebacks(), ref.writebacks())
            << "access " << i;
    }
    for (Addr a = 0; a < 64 * 1024; a += 32)
        EXPECT_EQ(fast.contains(a), ref.contains(a)) << a;
}

TEST(MemSpanPrimitives, TlbAccessRunMatchesLoop)
{
    Tlb run("t.run", 8, 4096, 25);
    Tlb loop("t.loop", 8, 4096, 25);
    Rng rng(7);
    Cycles runPenalty = 0, loopPenalty = 0;
    for (unsigned i = 0; i < 4000; ++i) {
        // More pages than entries, so the walks keep evicting.
        const Addr a = rng.nextBelow(24) * 4096 + rng.nextBelow(4096);
        const std::uint64_t n = 1 + rng.nextBelow(6);
        runPenalty += run.accessRun(a, n);
        for (std::uint64_t k = 0; k < n; ++k)
            loopPenalty += loop.access(a);
        ASSERT_EQ(run.hits(), loop.hits()) << "round " << i;
        ASSERT_EQ(run.misses(), loop.misses()) << "round " << i;
    }
    // accessRun reports only the first access's penalty; the others
    // always hit, so the totals agree too.
    EXPECT_EQ(runPenalty, loopPenalty);
}

TEST(MemSpanPrimitives, DramAccessPatternMatchesLoop)
{
    // Row-aligned, row-crossing, and deliberately awkward strides:
    // the closed-form recurrence and its conservative fallback must
    // both land exactly on the per-record loop.
    struct Case
    {
        Addr base;
        Addr stride;
        unsigned records;
        unsigned words;
    };
    const Case cases[] = {
        {0, 256, 64, 64},          // unit-ish stream, row aligned
        {128, 4096, 100, 8},       // one record per row
        {64, 4224, 77, 16},        // stride not row aligned
        {2048 - 64, 256, 40, 32},  // records straddling rows
        {0, 0, 12, 8},             // stride 0 (re-read same burst)
        {512, 96, 200, 24},        // records overlap their stride
    };
    for (const Case &c : cases) {
        DramConfig cfg;
        DramModel pat(cfg), ref(cfg);
        Cycles earliest = 5;
        const AccessWindow wp =
            pat.accessPattern(c.base, c.stride, c.records, c.words,
                              earliest);
        AccessWindow wr{};
        for (unsigned r = 0; r < c.records; ++r) {
            wr = ref.access(c.base + static_cast<Addr>(r) * c.stride,
                            c.words, earliest);
        }
        EXPECT_EQ(wp.start, wr.start) << c.base << "+" << c.stride;
        EXPECT_EQ(wp.finish, wr.finish) << c.base << "+" << c.stride;
        EXPECT_EQ(pat.rowHits(), ref.rowHits());
        EXPECT_EQ(pat.rowMisses(), ref.rowMisses());
        EXPECT_EQ(pat.transferCycles(), ref.transferCycles());
        EXPECT_EQ(pat.overheadCycles(), ref.overheadCycles());
        EXPECT_EQ(pat.busFreeAt(), ref.busFreeAt());
    }
}

} // namespace
} // namespace triarch::mem

// --- Study-level differential -----------------------------------------

namespace triarch::study
{
namespace
{

/** RAII override of the process-wide default memory model. */
class MemModelOverride
{
  public:
    explicit MemModelOverride(mem::MemModel m)
        : saved(mem::defaultMemModel())
    {
        mem::setDefaultMemModel(m);
    }
    ~MemModelOverride() { mem::setDefaultMemModel(saved); }

  private:
    mem::MemModel saved;
};

/** Every cell whose machine resolves cfg.memModel (D13). */
std::vector<Cell>
spanCells()
{
    std::vector<Cell> cells;
    for (const MachineId m :
         {MachineId::PpcScalar, MachineId::PpcAltivec, MachineId::Viram,
          MachineId::Imagine}) {
        for (const KernelId k :
             {KernelId::CornerTurn, KernelId::Cslc,
              KernelId::BeamSteering}) {
            cells.push_back({m, k});
        }
    }
    return cells;
}

TEST(MemSpanDifferential, DefaultConfigPinnedPartitions)
{
    // The default study config, both models: bit-identical results,
    // and the D9 partition stays an exact partition. Two cells are
    // pinned to the committed Table-3 baseline numbers so a drift
    // that slipped past the differential (both modes wrong the same
    // way) still trips here.
    const StudyConfig cfg;
    std::vector<RunResult> span, ref;
    {
        MemModelOverride guard(mem::MemModel::Span);
        ParallelRunner runner(cfg, 1, nullptr,
                              ParallelRunner::noCache());
        span = runner.runCells(spanCells());
    }
    {
        MemModelOverride guard(mem::MemModel::Reference);
        ParallelRunner runner(cfg, 1, nullptr,
                              ParallelRunner::noCache());
        ref = runner.runCells(spanCells());
    }
    ASSERT_EQ(span.size(), ref.size());
    for (std::size_t i = 0; i < span.size(); ++i) {
        EXPECT_EQ(span[i], ref[i]) << "cell " << i;
        EXPECT_EQ(span[i].breakdown.categorySum(),
                  span[i].breakdown.total)
            << "cell " << i;
        EXPECT_EQ(span[i].breakdown.total, span[i].cycles)
            << "cell " << i;
    }
    for (const RunResult &r : span) {
        using stats::CycleCategory;
        if (r.machine == MachineId::PpcScalar
            && r.kernel == KernelId::CornerTurn) {
            // bench/baselines/BENCH_table3.json, ppc/ct.
            EXPECT_EQ(r.cycles, 25261710u);
            EXPECT_EQ(r.breakdown[CycleCategory::Compute], 2916352u);
            EXPECT_EQ(r.breakdown[CycleCategory::CacheStall],
                      7340032u);
            EXPECT_EQ(r.breakdown[CycleCategory::DramDma], 15005326u);
        }
        if (r.machine == MachineId::Viram
            && r.kernel == KernelId::CornerTurn) {
            // bench/baselines/BENCH_table3.json, viram/ct.
            EXPECT_EQ(r.cycles, 519037u);
            EXPECT_EQ(r.breakdown[CycleCategory::DramDma], 519036u);
            EXPECT_EQ(r.breakdown[CycleCategory::NetworkSync], 1u);
        }
    }
}

TEST(MemSpanDifferential, BoundaryConfigsAcrossThreadCounts)
{
    // The fuzz sweep's hand-written boundary configs, every span
    // machine and kernel, reference at one thread against span at
    // 1/2/8 threads.
    FuzzOptions opts;
    opts.randomConfigs = 0;
    const std::vector<Cell> cells = spanCells();

    unsigned checked = 0;
    for (const StudyConfig &cfg : enumerateFuzzConfigs(opts)) {
        if (validateConfig(cfg))
            continue;           // invalid-on-purpose boundary config
        if (checked == 6)
            break;              // keep the suite seconds-fast
        ++checked;
        SCOPED_TRACE(describeConfig(cfg));

        std::vector<RunResult> expect;
        {
            MemModelOverride guard(mem::MemModel::Reference);
            ParallelRunner runner(cfg, 1, nullptr,
                                  ParallelRunner::noCache());
            expect = runner.runCells(cells);
        }
        MemModelOverride guard(mem::MemModel::Span);
        for (const unsigned threads : {1u, 2u, 8u}) {
            ParallelRunner runner(cfg, threads, nullptr,
                                  ParallelRunner::noCache());
            const std::vector<RunResult> got = runner.runCells(cells);
            ASSERT_EQ(got.size(), expect.size());
            for (std::size_t i = 0; i < expect.size(); ++i) {
                EXPECT_EQ(got[i], expect[i])
                    << threads << " threads, cell " << i;
            }
        }
    }
    EXPECT_GE(checked, 4u) << "boundary set shrank unexpectedly";
}

} // namespace
} // namespace triarch::study
