/**
 * @file
 * Tests for the experiment daemon stack (src/serve) and the bounded
 * ResultCache it shares across requests:
 *
 *  - triarch.job.v1 / triarch.result.v1 round-trips and malformed-
 *    document rejection, mirroring the triarch.bench.v1 pins in
 *    test_cycle_account.cc;
 *  - LRU eviction order (entry and byte bounds) plus the
 *    triarch.cache.v1 persistence round-trip;
 *  - ExperimentService semantics with a deterministic fake registry:
 *    cache hits on repeat, coalescing (two identical concurrent
 *    cells run once), whole-job backpressure refusal, and the drain
 *    gate answering every accepted cell while refusing new ones;
 *  - the socket transport end to end over AF_UNIX and TCP loopback,
 *    including the bad_request response for an unparseable line.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "sim/host_clock.hh"
#include "sim/hw_report.hh"
#include "study/result_cache.hh"
#include "study/study_json.hh"

namespace
{

using namespace triarch;
using serve::JobErrorCode;
using serve::JobRequest;
using serve::JobResponse;
using study::KernelId;
using study::MachineId;

/** A small but valid StudyConfig so service tests never pay for the
 *  paper-sized workloads (the fake registry below ignores the
 *  Workloads anyway, but submit() validates and builds them). */
study::StudyConfig
tinyConfig()
{
    study::StudyConfig cfg;
    cfg.matrixSize = 64;
    cfg.cslc.samples = 128;
    cfg.cslc.subBands = 1;
    cfg.cslc.subBandLen = 128;
    cfg.cslc.subBandStride = 1;
    cfg.jammerBins = {10, 40, 90};
    cfg.beam.elements = 8;
    cfg.beam.directions = 2;
    cfg.beam.dwells = 1;
    cfg.beam.shift = 6;
    cfg.seed = 3;
    return cfg;
}

/** A synthetic RunResult whose breakdown partitions its cycles, so
 *  it survives the writeRunResult/parseRunResult invariant checks. */
study::RunResult
fakeResult(MachineId machine, KernelId kernel, std::uint64_t cycles)
{
    study::RunResult r;
    r.machine = machine;
    r.kernel = kernel;
    r.cycles = cycles;
    r.breakdown.cycles = {cycles, 0, 0, 0, 0};
    r.breakdown.total = cycles;
    r.validated = true;
    r.notes = {{"utilization", 0.5}};
    return r;
}

/** Lets a test hold every fake mapping inside its functor until the
 *  test has observed the in-flight state it wants. */
struct Gate
{
    std::mutex m;
    std::condition_variable cv;
    bool open = false;

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            open = true;
        }
        cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return open; });
    }
};

/** A registry of deterministic fake mappings: each execution bumps
 *  a shared counter and (optionally) blocks on a gate first. */
study::MappingRegistry
fakeRegistry(std::atomic<std::uint64_t> *executions,
             Gate *gate = nullptr)
{
    study::MappingRegistry registry;
    const std::vector<std::pair<MachineId, KernelId>> pairs = {
        {MachineId::PpcScalar, KernelId::CornerTurn},
        {MachineId::PpcScalar, KernelId::Cslc},
        {MachineId::Viram, KernelId::CornerTurn},
        {MachineId::Raw, KernelId::BeamSteering},
    };
    std::uint64_t cycles = 100;
    for (const auto &[machine, kernel] : pairs) {
        const auto result = fakeResult(machine, kernel, cycles);
        cycles += 100;
        registry.add(machine, kernel,
                     [executions, gate, result](
                         const study::StudyConfig &,
                         const study::Workloads &) {
                         if (gate)
                             gate->wait();
                         ++*executions;
                         return result;
                     });
    }
    return registry;
}

JobRequest
tinyRequest(std::vector<study::Cell> cells,
            const std::string &id = "job")
{
    JobRequest request;
    request.id = id;
    request.config = tinyConfig();
    request.cells = std::move(cells);
    return request;
}

// --- protocol ------------------------------------------------------

TEST(ServeProtocol, JobRequestRoundTripsBitForBit)
{
    JobRequest request = tinyRequest(
        {{MachineId::PpcScalar, KernelId::CornerTurn},
         {MachineId::Raw, KernelId::BeamSteering}},
        "sweep-42");

    const std::string line = serve::writeJobRequest(request);
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "requests must fit the line-delimited framing";

    JobRequest parsed;
    std::string error;
    ASSERT_TRUE(serve::parseJobRequest(line, &parsed, &error)) << error;
    EXPECT_EQ(parsed, request);
}

TEST(ServeProtocol, OkResponseRoundTripsBitForBit)
{
    JobResponse response;
    response.id = "sweep-42";
    response.configHash = "deadbeef01";
    auto first =
        fakeResult(MachineId::Viram, KernelId::CornerTurn, 1234);
    first.measuredUnbalanced = 4321;
    first.notes.emplace_back("lanes", 8.0);
    response.results.push_back({std::move(first), true});
    response.results.push_back(
        {fakeResult(MachineId::Imagine, KernelId::Cslc, 999), false});

    const std::string line = serve::writeJobResponse(response);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    JobResponse parsed;
    std::string error;
    ASSERT_TRUE(serve::parseJobResponse(line, &parsed, &error))
        << error;
    EXPECT_EQ(parsed, response);
}

TEST(ServeProtocol, ErrorResponseRoundTripsEveryCode)
{
    for (const auto code :
         {JobErrorCode::BadRequest, JobErrorCode::Overloaded,
          JobErrorCode::Draining, JobErrorCode::Unmapped,
          JobErrorCode::Internal}) {
        JobResponse response;
        response.id = "j";
        response.configHash = "0";
        response.error = serve::JobError{code, "why not"};

        JobResponse parsed;
        std::string error;
        ASSERT_TRUE(serve::parseJobResponse(
            serve::writeJobResponse(response), &parsed, &error))
            << error;
        EXPECT_EQ(parsed, response);

        // Token mapping is a bijection.
        const std::string &token = serve::jobErrorCodeToken(code);
        ASSERT_TRUE(serve::parseJobErrorCode(token).has_value());
        EXPECT_EQ(*serve::parseJobErrorCode(token), code);
    }
    EXPECT_FALSE(serve::parseJobErrorCode("bogus").has_value());
}

TEST(ServeProtocol, MalformedRequestsAreRejectedWithReasons)
{
    const auto rejects = [](const std::string &text,
                            const std::string &substr) {
        JobRequest request;
        std::string error;
        EXPECT_FALSE(serve::parseJobRequest(text, &request, &error))
            << text;
        EXPECT_NE(error.find(substr), std::string::npos)
            << "error was: " << error;
    };

    rejects("this is not json", "");
    rejects("[1,2,3]", "object");
    rejects(R"({"id": "x"})", "schema");
    rejects(R"({"schema": "triarch.job.v9", "id": "x"})",
            "triarch.job.v9");

    // Structurally valid envelope, broken payloads.
    const std::string head =
        R"({"schema": "triarch.job.v1", "id": "x")";
    rejects(head + "}", "cells");
    rejects(head + R"(, "cells": []})", "empty");
    rejects(head + R"(, "cells": [{"kernel": "ct"}]})", "machine");
    rejects(head
                + R"(, "cells": [{"machine": "cray", "kernel": "ct"}]})",
            "cray");
}

TEST(ServeProtocol, MalformedResponsesAreRejected)
{
    const auto rejects = [](const std::string &text,
                            const std::string &substr) {
        JobResponse response;
        std::string error;
        EXPECT_FALSE(
            serve::parseJobResponse(text, &response, &error))
            << text;
        EXPECT_NE(error.find(substr), std::string::npos)
            << "error was: " << error;
    };

    const std::string head =
        R"({"schema": "triarch.result.v1", "id": "x")";
    rejects(head + "}", "config_hash");
    rejects(head + R"(, "config_hash": "1"})", "status");
    rejects(head + R"(, "config_hash": "1", "status": "error"})",
            "error");
    rejects(head + R"(, "config_hash": "1", "status": "ok"})",
            "results");
}

TEST(ServeProtocol, BadRequestResponseRecoversTheId)
{
    const auto withId = serve::badRequestResponse(
        R"({"schema": "triarch.job.v1", "id": "lost-job"})",
        "missing cells array");
    EXPECT_EQ(withId.id, "lost-job");
    ASSERT_FALSE(withId.ok());
    EXPECT_EQ(withId.error->code, JobErrorCode::BadRequest);
    EXPECT_NE(withId.error->message.find("missing cells"),
              std::string::npos);

    const auto garbage = serve::badRequestResponse("%%%", "nope");
    EXPECT_EQ(garbage.id, "");
    ASSERT_FALSE(garbage.ok());
    EXPECT_EQ(garbage.error->code, JobErrorCode::BadRequest);
}

// --- result cache --------------------------------------------------

TEST(ResultCacheLru, EvictsLeastRecentlyUsedEntryFirst)
{
    study::ResultCache cache(study::CacheCapacity{3, 0});
    const std::uint64_t hash = 7;

    const auto a =
        fakeResult(MachineId::PpcScalar, KernelId::CornerTurn, 1);
    const auto b = fakeResult(MachineId::PpcScalar, KernelId::Cslc, 2);
    const auto c = fakeResult(MachineId::Viram, KernelId::CornerTurn, 3);
    cache.put(a, hash);
    cache.put(b, hash);
    cache.put(c, hash);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 0u);

    // Touch 'a' so 'b' becomes the LRU entry, then overflow.
    ASSERT_TRUE(cache.get(a.machine, a.kernel, hash).has_value());
    cache.put(fakeResult(MachineId::Raw, KernelId::BeamSteering, 4),
              hash);

    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.get(b.machine, b.kernel, hash).has_value());
    EXPECT_TRUE(cache.get(a.machine, a.kernel, hash).has_value());
    EXPECT_TRUE(cache.get(c.machine, c.kernel, hash).has_value());
}

TEST(ResultCacheLru, ByteBoundEvictsWhenEntriesAreUnlimited)
{
    study::ResultCache probe;
    probe.put(fakeResult(MachineId::PpcScalar, KernelId::CornerTurn, 1),
              1);
    const std::size_t oneEntry = probe.approxBytes();
    ASSERT_GT(oneEntry, 0u);

    // Room for two entries, not three.
    study::ResultCache cache(
        study::CacheCapacity{0, 2 * oneEntry + oneEntry / 2});
    cache.put(fakeResult(MachineId::PpcScalar, KernelId::CornerTurn, 1),
              1);
    cache.put(fakeResult(MachineId::PpcScalar, KernelId::Cslc, 2), 1);
    cache.put(fakeResult(MachineId::Viram, KernelId::CornerTurn, 3), 1);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_LE(cache.approxBytes(), 2 * oneEntry + oneEntry / 2);
    EXPECT_FALSE(cache
                     .get(MachineId::PpcScalar, KernelId::CornerTurn, 1)
                     .has_value());
}

TEST(ResultCacheLru, ShrinkingCapacityEvictsImmediately)
{
    study::ResultCache cache;
    for (unsigned i = 0; i < 4; ++i) {
        cache.put(fakeResult(MachineId::PpcScalar,
                             KernelId::CornerTurn, i + 1),
                  i);
    }
    EXPECT_EQ(cache.size(), 4u);
    cache.setCapacity(study::CacheCapacity{2, 0});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 2u);
    // The newest entries (hashes 2 and 3) survive.
    EXPECT_TRUE(cache.get(MachineId::PpcScalar, KernelId::CornerTurn, 3)
                    .has_value());
    EXPECT_FALSE(
        cache.get(MachineId::PpcScalar, KernelId::CornerTurn, 0)
            .has_value());
}

TEST(ResultCachePersistence, SaveLoadRoundTripsEntriesAndRecency)
{
    study::ResultCache cache;
    auto rich = fakeResult(MachineId::Imagine, KernelId::Cslc, 555);
    rich.measuredUnbalanced = 777;
    rich.notes.emplace_back("stall_fraction", 0.25);
    cache.put(rich, 11);
    cache.put(fakeResult(MachineId::Raw, KernelId::BeamSteering, 9),
              22);

    std::ostringstream os;
    cache.save(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find(study::ResultCache::cacheSchema()),
              std::string::npos);

    study::ResultCache reloaded;
    std::string error;
    const auto n = reloaded.load(doc, &error);
    ASSERT_TRUE(n.has_value()) << error;
    EXPECT_EQ(*n, 2u);
    EXPECT_EQ(reloaded.size(), 2u);

    const auto hit =
        reloaded.get(MachineId::Imagine, KernelId::Cslc, 11);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, rich);

    // Recency survives the round trip: 'rich' was put first, so a
    // one-entry bound keeps only the Raw/BS cell. A fresh load (the
    // get() above refreshed 'rich' in `reloaded`) shows the order.
    study::ResultCache pristine;
    ASSERT_TRUE(pristine.load(doc, &error).has_value()) << error;
    pristine.setCapacity(study::CacheCapacity{1, 0});
    EXPECT_TRUE(
        pristine.get(MachineId::Raw, KernelId::BeamSteering, 22)
            .has_value());
    EXPECT_FALSE(pristine.get(MachineId::Imagine, KernelId::Cslc, 11)
                     .has_value());
}

TEST(ResultCachePersistence, RejectsMalformedDocuments)
{
    study::ResultCache cache;
    std::string error;
    EXPECT_FALSE(cache.load("not json at all {", &error).has_value());
    EXPECT_FALSE(error.empty());

    EXPECT_FALSE(
        cache.load(R"({"schema": "triarch.cache.v9", "cells": []})",
                   &error)
            .has_value());
    EXPECT_NE(error.find("triarch.cache.v9"), std::string::npos);
}

TEST(ResultCachePersistence, MissingFileIsAColdStartNotAnError)
{
    study::ResultCache cache;
    std::string error;
    const auto n = cache.loadFile(
        testing::TempDir() + "/no_such_cache_file.json", &error);
    ASSERT_TRUE(n.has_value()) << error;
    EXPECT_EQ(*n, 0u);
    EXPECT_EQ(cache.size(), 0u);
}

// --- experiment service --------------------------------------------

TEST(ExperimentService, SecondSubmitIsServedFromTheSharedCache)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ServiceOptions opts;
    opts.workers = 2;
    serve::ExperimentService service(opts, &registry, &cache);

    const auto request = tinyRequest(
        {{MachineId::PpcScalar, KernelId::CornerTurn},
         {MachineId::PpcScalar, KernelId::Cslc}});

    const auto cold = service.submit(request);
    ASSERT_TRUE(cold.ok()) << cold.error->message;
    ASSERT_EQ(cold.results.size(), 2u);
    EXPECT_FALSE(cold.results[0].cached);
    EXPECT_FALSE(cold.results[1].cached);
    EXPECT_EQ(executions.load(), 2u);

    const auto warm = service.submit(request);
    ASSERT_TRUE(warm.ok()) << warm.error->message;
    ASSERT_EQ(warm.results.size(), 2u);
    EXPECT_TRUE(warm.results[0].cached);
    EXPECT_TRUE(warm.results[1].cached);
    EXPECT_EQ(executions.load(), 2u) << "cache hits must not recompute";
    EXPECT_EQ(warm.results[0].result, cold.results[0].result);
    EXPECT_EQ(warm.results[1].result, cold.results[1].result);

    EXPECT_EQ(service.cellsFromCache(), 2u);
    EXPECT_EQ(service.jobsAccepted(), 2u);
    EXPECT_EQ(warm.configHash, cold.configHash);
}

TEST(ExperimentService, IdenticalConcurrentCellsExecuteOnce)
{
    std::atomic<std::uint64_t> executions{0};
    Gate gate;
    const auto registry = fakeRegistry(&executions, &gate);
    study::ResultCache cache;
    serve::ServiceOptions opts;
    opts.workers = 2;
    serve::ExperimentService service(opts, &registry, &cache);

    const auto request = tinyRequest(
        {{MachineId::PpcScalar, KernelId::CornerTurn}}, "first");

    JobResponse first;
    std::thread submitter(
        [&] { first = service.submit(request); });

    // Wait until the first job's cell is in flight (accepted and
    // enqueued), then submit the identical cell from this thread;
    // it must attach to the in-flight execution, not start another.
    while (service.jobsAccepted() < 1)
        std::this_thread::yield();
    JobResponse second;
    std::thread coalescer([&] {
        second = service.submit(tinyRequest(
            {{MachineId::PpcScalar, KernelId::CornerTurn}}, "second"));
    });
    while (service.cellsCoalesced() < 1)
        std::this_thread::yield();

    gate.release();
    submitter.join();
    coalescer.join();

    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(executions.load(), 1u)
        << "two identical concurrent cells must execute once";
    EXPECT_EQ(service.cellsExecuted(), 1u);
    EXPECT_EQ(service.cellsCoalesced(), 1u);
    ASSERT_EQ(first.results.size(), 1u);
    ASSERT_EQ(second.results.size(), 1u);
    EXPECT_EQ(first.results[0].result, second.results[0].result);
}

TEST(ExperimentService, DuplicateCellsWithinOneJobExecuteOnce)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    const auto response = service.submit(tinyRequest(
        {{MachineId::PpcScalar, KernelId::CornerTurn},
         {MachineId::PpcScalar, KernelId::CornerTurn}}));
    ASSERT_TRUE(response.ok()) << response.error->message;
    ASSERT_EQ(response.results.size(), 2u);
    EXPECT_EQ(executions.load(), 1u);
    EXPECT_EQ(service.cellsCoalesced(), 1u);
    EXPECT_EQ(response.results[0].result, response.results[1].result);
}

TEST(ExperimentService, FullQueueRefusesJobsWithTypedOverload)
{
    std::atomic<std::uint64_t> executions{0};
    Gate gate;
    const auto registry = fakeRegistry(&executions, &gate);
    study::ResultCache cache;
    serve::ServiceOptions opts;
    opts.workers = 1;
    opts.maxOutstandingCells = 1;
    serve::ExperimentService service(opts, &registry, &cache);

    JobResponse first;
    std::thread submitter([&] {
        first = service.submit(tinyRequest(
            {{MachineId::PpcScalar, KernelId::CornerTurn}}));
    });
    while (service.jobsAccepted() < 1)
        std::this_thread::yield();

    // A different cell cannot coalesce, so it needs queue room that
    // does not exist: the whole job is refused, immediately.
    const auto refused = service.submit(
        tinyRequest({{MachineId::PpcScalar, KernelId::Cslc}}));
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error->code, JobErrorCode::Overloaded);
    EXPECT_NE(refused.error->message.find("queue is full"),
              std::string::npos);
    EXPECT_EQ(service.jobsRefused(), 1u);

    gate.release();
    submitter.join();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(executions.load(), 1u);
}

TEST(ExperimentService, DrainRefusesNewJobsAndAnswersAcceptedOnes)
{
    std::atomic<std::uint64_t> executions{0};
    Gate gate;
    const auto registry = fakeRegistry(&executions, &gate);
    study::ResultCache cache;
    serve::ServiceOptions opts;
    opts.workers = 1;
    serve::ExperimentService service(opts, &registry, &cache);

    JobResponse accepted;
    std::thread submitter([&] {
        accepted = service.submit(tinyRequest(
            {{MachineId::PpcScalar, KernelId::CornerTurn}}));
    });
    while (service.jobsAccepted() < 1)
        std::this_thread::yield();

    EXPECT_FALSE(service.draining());
    service.beginDrain();
    EXPECT_TRUE(service.draining());

    const auto refused = service.submit(
        tinyRequest({{MachineId::PpcScalar, KernelId::Cslc}}));
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error->code, JobErrorCode::Draining);

    // The accepted cell still runs to completion and is answered.
    gate.release();
    service.drain();
    submitter.join();
    ASSERT_TRUE(accepted.ok());
    ASSERT_EQ(accepted.results.size(), 1u);
    EXPECT_EQ(executions.load(), 1u);
}

TEST(ExperimentService, BadRequestsGetTypedErrors)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    const auto empty = service.submit(tinyRequest({}));
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error->code, JobErrorCode::BadRequest);
    EXPECT_NE(empty.error->message.find("no cells"),
              std::string::npos);

    auto invalid = tinyRequest(
        {{MachineId::PpcScalar, KernelId::CornerTurn}});
    invalid.config.matrixSize = 100;    // not a multiple of 64
    const auto rejected = service.submit(invalid);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error->code, JobErrorCode::BadRequest);
    EXPECT_NE(rejected.error->message.find("matrixSize"),
              std::string::npos);

    const auto unmapped = service.submit(
        tinyRequest({{MachineId::Imagine, KernelId::BeamSteering}}));
    ASSERT_FALSE(unmapped.ok());
    EXPECT_EQ(unmapped.error->code, JobErrorCode::Unmapped);

    EXPECT_EQ(service.jobsRefused(), 2u)
        << "unmapped cells fail after acceptance, not at the gate";
    EXPECT_EQ(executions.load(), 0u);
}

// --- socket transport ----------------------------------------------

TEST(SocketServer, UnixSocketServesAJobRoundTrip)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    serve::ServerOptions serverOpts;
    serverOpts.unixPath = testing::TempDir() + "/triarchd_test_"
                          + std::to_string(::getpid()) + ".sock";
    serve::SocketServer server(service, serverOpts);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto client = serve::Client::connectUnix(serverOpts.unixPath,
                                             &error);
    ASSERT_TRUE(client.connected()) << error;

    const auto request = tinyRequest(
        {{MachineId::PpcScalar, KernelId::CornerTurn}});
    const auto response = client.call(request, &error);
    ASSERT_TRUE(response.has_value()) << error;
    ASSERT_TRUE(response->ok()) << response->error->message;
    EXPECT_EQ(response->id, request.id);
    ASSERT_EQ(response->results.size(), 1u);
    EXPECT_EQ(response->results[0].result.cycles, 100u);

    // Same connection, second call: served by the shared cache.
    const auto warm = client.call(request, &error);
    ASSERT_TRUE(warm.has_value()) << error;
    ASSERT_TRUE(warm->ok());
    EXPECT_TRUE(warm->results[0].cached);
    EXPECT_EQ(executions.load(), 1u);
    EXPECT_EQ(server.connectionsAccepted(), 1u);

    client.close();
    server.stop();
    service.drain();
}

TEST(SocketServer, TcpLoopbackPicksAnEphemeralPort)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    serve::SocketServer server(service, serve::ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_NE(server.port(), 0u);

    auto client = serve::Client::connectTcp(server.port(), &error);
    ASSERT_TRUE(client.connected()) << error;
    const auto response = client.call(
        tinyRequest({{MachineId::Raw, KernelId::BeamSteering}}),
        &error);
    ASSERT_TRUE(response.has_value()) << error;
    ASSERT_TRUE(response->ok()) << response->error->message;

    client.close();
    server.stop();
}

TEST(SocketServer, GarbageLineGetsABadRequestNotAHangup)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    serve::ServerOptions serverOpts;
    serverOpts.unixPath = testing::TempDir() + "/triarchd_garbage_"
                          + std::to_string(::getpid()) + ".sock";
    serve::SocketServer server(service, serverOpts);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Raw socket: the Client class refuses to send garbage for us.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, serverOpts.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string garbage = "this is not a job request\n";
    ASSERT_EQ(::write(fd, garbage.data(), garbage.size()),
              static_cast<ssize_t>(garbage.size()));

    std::string line;
    char ch = 0;
    while (::read(fd, &ch, 1) == 1 && ch != '\n')
        line.push_back(ch);
    ::close(fd);

    JobResponse response;
    ASSERT_TRUE(serve::parseJobResponse(line, &response, &error))
        << error << " in: " << line;
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.error->code, JobErrorCode::BadRequest);

    server.stop();
}

// --- the stats endpoint --------------------------------------------

TEST(ServeProtocol, StatsRequestRoundTripsWithoutConfigOrCells)
{
    JobRequest probe;
    probe.id = "statsz";
    probe.kind = serve::RequestKind::Stats;

    const std::string line = serve::writeJobRequest(probe);
    EXPECT_NE(line.find("\"type\": \"stats\""), std::string::npos)
        << line;
    EXPECT_EQ(line.find("cells"), std::string::npos)
        << "stats probes carry no work: " << line;
    EXPECT_EQ(line.find("config"), std::string::npos) << line;

    JobRequest parsed;
    std::string error;
    ASSERT_TRUE(serve::parseJobRequest(line, &parsed, &error)) << error;
    EXPECT_EQ(parsed, probe);

    // Run requests never carry a type field, so their bytes are
    // unchanged from before the stats endpoint existed.
    const std::string runLine = serve::writeJobRequest(
        tinyRequest({{MachineId::PpcScalar, KernelId::CornerTurn}}));
    EXPECT_EQ(runLine.find("\"type\""), std::string::npos) << runLine;

    // An unknown type is a typed rejection, not a silent Run.
    JobRequest bogus;
    EXPECT_FALSE(serve::parseJobRequest(
        R"({"schema": "triarch.job.v1", "id": "x", "type": "selfdestruct"})",
        &bogus, &error));
    EXPECT_NE(error.find("selfdestruct"), std::string::npos) << error;
}

TEST(ServeProtocol, StatsResponseRoundTripsTheSnapshotVerbatim)
{
    JobResponse response;
    response.id = "statsz";
    response.configHash = "abc";
    response.statsJson =
        R"({"schema": "triarch.stats.v1", "groups": )"
        R"([{"label": "serve", "scalars": {"jobs_accepted": 3}}]})";

    const std::string line = serve::writeJobResponse(response);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_EQ(line.find("results"), std::string::npos)
        << "a stats response replaces the results array: " << line;

    JobResponse parsed;
    std::string error;
    ASSERT_TRUE(serve::parseJobResponse(line, &parsed, &error))
        << error;
    EXPECT_EQ(parsed, response)
        << "the embedded snapshot must survive bit-for-bit";

    // A stats field that is not an object is rejected.
    EXPECT_FALSE(serve::parseJobResponse(
        R"({"schema": "triarch.result.v1", "id": "x",
            "config_hash": "1", "status": "ok", "stats": 7})",
        &parsed, &error));
    EXPECT_NE(error.find("stats"), std::string::npos) << error;
}

TEST(ExperimentService, StatsSnapshotIsLiveAndRefusedWhileDraining)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    JobRequest probe;
    probe.id = "statsz";
    probe.kind = serve::RequestKind::Stats;

    const JobResponse before = service.stats(probe);
    ASSERT_TRUE(before.ok());
    EXPECT_EQ(before.id, "statsz");
    EXPECT_NE(before.statsJson.find("triarch.stats.v1"),
              std::string::npos);
    EXPECT_NE(before.statsJson.find("\"jobs_accepted\": 0"),
              std::string::npos)
        << before.statsJson;

    ASSERT_TRUE(
        service
            .submit(tinyRequest(
                {{MachineId::PpcScalar, KernelId::CornerTurn}}))
            .ok());
    const JobResponse after = service.stats(probe);
    ASSERT_TRUE(after.ok());
    EXPECT_NE(after.statsJson.find("\"jobs_accepted\": 1"),
              std::string::npos)
        << "the snapshot must be live, not captured at startup";
    EXPECT_NE(after.statsJson.find("uptime_seconds"),
              std::string::npos);

    service.beginDrain();
    const JobResponse refused = service.stats(probe);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error->code, JobErrorCode::Draining);
    EXPECT_TRUE(refused.statsJson.empty());
}

TEST(SocketServer, StatsRequestRoundTripsOverUnixAndTcp)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    // With host profiling on, a served job must surface latency
    // histograms in the wire snapshot — the daemon's default mode.
    host::setProfiling(true);

    serve::ServerOptions serverOpts;
    serverOpts.unixPath = testing::TempDir() + "/triarchd_stats_"
                          + std::to_string(::getpid()) + ".sock";
    serve::SocketServer server(service, serverOpts);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto unixClient =
        serve::Client::connectUnix(serverOpts.unixPath, &error);
    ASSERT_TRUE(unixClient.connected()) << error;
    ASSERT_TRUE(unixClient
                    .call(tinyRequest({{MachineId::PpcScalar,
                                        KernelId::CornerTurn}}),
                          &error)
                    .has_value())
        << error;

    JobRequest probe;
    probe.id = "statsz";
    probe.kind = serve::RequestKind::Stats;
    const auto overUnix = unixClient.call(probe, &error);
    ASSERT_TRUE(overUnix.has_value()) << error;
    ASSERT_TRUE(overUnix->ok()) << overUnix->error->message;
    EXPECT_NE(overUnix->statsJson.find("\"jobs_accepted\": 1"),
              std::string::npos)
        << overUnix->statsJson;
    EXPECT_NE(overUnix->statsJson.find("cell_service_ns"),
              std::string::npos)
        << "profiling was on, so the latency histograms must show: "
        << overUnix->statsJson;
    host::setProfiling(false);

    // The same probe over TCP loopback sees the same counters.
    serve::SocketServer tcpServer(service, serve::ServerOptions{});
    ASSERT_TRUE(tcpServer.start(&error)) << error;
    auto tcpClient =
        serve::Client::connectTcp(tcpServer.port(), &error);
    ASSERT_TRUE(tcpClient.connected()) << error;
    const auto overTcp = tcpClient.call(probe, &error);
    ASSERT_TRUE(overTcp.has_value()) << error;
    ASSERT_TRUE(overTcp->ok()) << overTcp->error->message;
    EXPECT_NE(overTcp->statsJson.find("\"jobs_accepted\": 1"),
              std::string::npos);

    // A draining daemon refuses the probe with a typed error over
    // the wire, exactly like a job submission.
    service.beginDrain();
    const auto refused = tcpClient.call(probe, &error);
    ASSERT_TRUE(refused.has_value()) << error;
    ASSERT_FALSE(refused->ok());
    EXPECT_EQ(refused->error->code, JobErrorCode::Draining);

    tcpClient.close();
    unixClient.close();
    tcpServer.stop();
    server.stop();
    service.drain();
}

// --- the hw endpoint -------------------------------------------------

TEST(ServeProtocol, HwRequestAndResponseRoundTrip)
{
    JobRequest probe;
    probe.id = "hwz";
    probe.kind = serve::RequestKind::Hw;

    const std::string line = serve::writeJobRequest(probe);
    EXPECT_NE(line.find("\"type\": \"hw\""), std::string::npos)
        << line;
    EXPECT_EQ(line.find("cells"), std::string::npos)
        << "hw probes carry no work: " << line;

    JobRequest parsed;
    std::string error;
    ASSERT_TRUE(serve::parseJobRequest(line, &parsed, &error)) << error;
    EXPECT_EQ(parsed, probe);

    // The embedded triarch.hw.v1 document survives bit-for-bit.
    JobResponse response;
    response.id = "hwz";
    response.configHash = "abc";
    response.hwJson =
        R"({"schema": "triarch.hw.v1", "epoch_slots": 64, "cells": []})";
    const std::string wire = serve::writeJobResponse(response);
    EXPECT_EQ(wire.find('\n'), std::string::npos);
    JobResponse back;
    ASSERT_TRUE(serve::parseJobResponse(wire, &back, &error)) << error;
    EXPECT_EQ(back, response);

    // An hw field that is not an object is rejected.
    EXPECT_FALSE(serve::parseJobResponse(
        R"({"schema": "triarch.result.v1", "id": "x",
            "config_hash": "1", "status": "ok", "hw": 7})",
        &back, &error));
    EXPECT_NE(error.find("hw"), std::string::npos) << error;
}

TEST(ExperimentService, HwReportIsLiveAndRefusedWhileDraining)
{
    std::atomic<std::uint64_t> executions{0};
    const auto registry = fakeRegistry(&executions);
    study::ResultCache cache;
    serve::ExperimentService service({}, &registry, &cache);

    // Seed the process-wide registry with one consistent cell, as a
    // real kernel mapping would on execution.
    hw::HwRegistry::global().clear();
    hw::HwCell cell;
    cell.machine = "viram";
    cell.kernel = "ct";
    cell.cycles = 100;
    cell.breakdown.cycles = {10, 5, 80, 3, 2};
    cell.breakdown.total = 100;
    cell.verdict = {"dram", stats::CycleCategory::DramDma,
                    "bound by DRAM"};
    cell.timeline.cycles = 100;
    cell.timeline.epochCycles = 2;
    cell.timeline.channels.push_back(
        {"busy", std::vector<std::uint64_t>(50, 1)});
    hw::HwRegistry::global().capture(cell);

    JobRequest probe;
    probe.id = "hwz";
    probe.kind = serve::RequestKind::Hw;
    const JobResponse snap = service.hw(probe);
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(snap.id, "hwz");

    // The daemon's snapshot must itself satisfy the strict parser.
    std::string error;
    const auto parsed = hw::parseHwReport(snap.hwJson, &error);
    ASSERT_TRUE(parsed) << error;
    ASSERT_EQ(parsed->cells.size(), 1u);
    EXPECT_EQ(parsed->cells[0], cell);

    service.beginDrain();
    const JobResponse refused = service.hw(probe);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error->code, JobErrorCode::Draining);
    EXPECT_TRUE(refused.hwJson.empty());
    hw::HwRegistry::global().clear();
}

} // namespace
