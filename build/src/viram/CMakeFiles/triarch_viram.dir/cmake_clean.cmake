file(REMOVE_RECURSE
  "CMakeFiles/triarch_viram.dir/kernels_viram.cc.o"
  "CMakeFiles/triarch_viram.dir/kernels_viram.cc.o.d"
  "CMakeFiles/triarch_viram.dir/machine.cc.o"
  "CMakeFiles/triarch_viram.dir/machine.cc.o.d"
  "libtriarch_viram.a"
  "libtriarch_viram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_viram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
