# Empty dependencies file for triarch_viram.
# This may be replaced when dependencies are built.
