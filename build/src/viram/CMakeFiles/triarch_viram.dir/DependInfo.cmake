
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viram/kernels_viram.cc" "src/viram/CMakeFiles/triarch_viram.dir/kernels_viram.cc.o" "gcc" "src/viram/CMakeFiles/triarch_viram.dir/kernels_viram.cc.o.d"
  "/root/repo/src/viram/machine.cc" "src/viram/CMakeFiles/triarch_viram.dir/machine.cc.o" "gcc" "src/viram/CMakeFiles/triarch_viram.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/triarch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/triarch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/triarch_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
