file(REMOVE_RECURSE
  "libtriarch_viram.a"
)
