
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/beam_steering.cc" "src/kernels/CMakeFiles/triarch_kernels.dir/beam_steering.cc.o" "gcc" "src/kernels/CMakeFiles/triarch_kernels.dir/beam_steering.cc.o.d"
  "/root/repo/src/kernels/corner_turn.cc" "src/kernels/CMakeFiles/triarch_kernels.dir/corner_turn.cc.o" "gcc" "src/kernels/CMakeFiles/triarch_kernels.dir/corner_turn.cc.o.d"
  "/root/repo/src/kernels/cslc.cc" "src/kernels/CMakeFiles/triarch_kernels.dir/cslc.cc.o" "gcc" "src/kernels/CMakeFiles/triarch_kernels.dir/cslc.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/kernels/CMakeFiles/triarch_kernels.dir/fft.cc.o" "gcc" "src/kernels/CMakeFiles/triarch_kernels.dir/fft.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/triarch_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
