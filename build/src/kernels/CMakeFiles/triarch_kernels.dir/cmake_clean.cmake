file(REMOVE_RECURSE
  "CMakeFiles/triarch_kernels.dir/beam_steering.cc.o"
  "CMakeFiles/triarch_kernels.dir/beam_steering.cc.o.d"
  "CMakeFiles/triarch_kernels.dir/corner_turn.cc.o"
  "CMakeFiles/triarch_kernels.dir/corner_turn.cc.o.d"
  "CMakeFiles/triarch_kernels.dir/cslc.cc.o"
  "CMakeFiles/triarch_kernels.dir/cslc.cc.o.d"
  "CMakeFiles/triarch_kernels.dir/fft.cc.o"
  "CMakeFiles/triarch_kernels.dir/fft.cc.o.d"
  "libtriarch_kernels.a"
  "libtriarch_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
