file(REMOVE_RECURSE
  "libtriarch_kernels.a"
)
