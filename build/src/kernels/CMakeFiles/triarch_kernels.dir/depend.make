# Empty dependencies file for triarch_kernels.
# This may be replaced when dependencies are built.
