# Empty dependencies file for triarch_imagine.
# This may be replaced when dependencies are built.
