file(REMOVE_RECURSE
  "libtriarch_imagine.a"
)
