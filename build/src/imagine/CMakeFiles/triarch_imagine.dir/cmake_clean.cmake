file(REMOVE_RECURSE
  "CMakeFiles/triarch_imagine.dir/kernels_imagine.cc.o"
  "CMakeFiles/triarch_imagine.dir/kernels_imagine.cc.o.d"
  "CMakeFiles/triarch_imagine.dir/machine.cc.o"
  "CMakeFiles/triarch_imagine.dir/machine.cc.o.d"
  "CMakeFiles/triarch_imagine.dir/srf.cc.o"
  "CMakeFiles/triarch_imagine.dir/srf.cc.o.d"
  "libtriarch_imagine.a"
  "libtriarch_imagine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_imagine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
