# Empty compiler generated dependencies file for triarch_mem.
# This may be replaced when dependencies are built.
