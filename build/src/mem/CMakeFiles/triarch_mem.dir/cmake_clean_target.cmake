file(REMOVE_RECURSE
  "libtriarch_mem.a"
)
