file(REMOVE_RECURSE
  "CMakeFiles/triarch_mem.dir/cache.cc.o"
  "CMakeFiles/triarch_mem.dir/cache.cc.o.d"
  "CMakeFiles/triarch_mem.dir/dram.cc.o"
  "CMakeFiles/triarch_mem.dir/dram.cc.o.d"
  "libtriarch_mem.a"
  "libtriarch_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
