file(REMOVE_RECURSE
  "CMakeFiles/triarch_raw.dir/assembler.cc.o"
  "CMakeFiles/triarch_raw.dir/assembler.cc.o.d"
  "CMakeFiles/triarch_raw.dir/kernels_raw.cc.o"
  "CMakeFiles/triarch_raw.dir/kernels_raw.cc.o.d"
  "CMakeFiles/triarch_raw.dir/machine.cc.o"
  "CMakeFiles/triarch_raw.dir/machine.cc.o.d"
  "libtriarch_raw.a"
  "libtriarch_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
