# Empty compiler generated dependencies file for triarch_raw.
# This may be replaced when dependencies are built.
