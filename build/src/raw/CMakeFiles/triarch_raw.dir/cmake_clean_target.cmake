file(REMOVE_RECURSE
  "libtriarch_raw.a"
)
