
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raw/assembler.cc" "src/raw/CMakeFiles/triarch_raw.dir/assembler.cc.o" "gcc" "src/raw/CMakeFiles/triarch_raw.dir/assembler.cc.o.d"
  "/root/repo/src/raw/kernels_raw.cc" "src/raw/CMakeFiles/triarch_raw.dir/kernels_raw.cc.o" "gcc" "src/raw/CMakeFiles/triarch_raw.dir/kernels_raw.cc.o.d"
  "/root/repo/src/raw/machine.cc" "src/raw/CMakeFiles/triarch_raw.dir/machine.cc.o" "gcc" "src/raw/CMakeFiles/triarch_raw.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/triarch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/triarch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/triarch_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
