# Empty compiler generated dependencies file for triarch_ppc.
# This may be replaced when dependencies are built.
