file(REMOVE_RECURSE
  "libtriarch_ppc.a"
)
