file(REMOVE_RECURSE
  "CMakeFiles/triarch_ppc.dir/kernels_ppc.cc.o"
  "CMakeFiles/triarch_ppc.dir/kernels_ppc.cc.o.d"
  "CMakeFiles/triarch_ppc.dir/machine.cc.o"
  "CMakeFiles/triarch_ppc.dir/machine.cc.o.d"
  "libtriarch_ppc.a"
  "libtriarch_ppc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_ppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
