file(REMOVE_RECURSE
  "libtriarch_sim.a"
)
