file(REMOVE_RECURSE
  "CMakeFiles/triarch_sim.dir/logging.cc.o"
  "CMakeFiles/triarch_sim.dir/logging.cc.o.d"
  "CMakeFiles/triarch_sim.dir/stats.cc.o"
  "CMakeFiles/triarch_sim.dir/stats.cc.o.d"
  "CMakeFiles/triarch_sim.dir/table.cc.o"
  "CMakeFiles/triarch_sim.dir/table.cc.o.d"
  "libtriarch_sim.a"
  "libtriarch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
