# Empty compiler generated dependencies file for triarch_sim.
# This may be replaced when dependencies are built.
