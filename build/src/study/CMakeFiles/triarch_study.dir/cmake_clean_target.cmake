file(REMOVE_RECURSE
  "libtriarch_study.a"
)
