# Empty dependencies file for triarch_study.
# This may be replaced when dependencies are built.
