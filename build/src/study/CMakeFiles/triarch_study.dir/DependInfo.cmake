
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/study/experiment.cc" "src/study/CMakeFiles/triarch_study.dir/experiment.cc.o" "gcc" "src/study/CMakeFiles/triarch_study.dir/experiment.cc.o.d"
  "/root/repo/src/study/machine_info.cc" "src/study/CMakeFiles/triarch_study.dir/machine_info.cc.o" "gcc" "src/study/CMakeFiles/triarch_study.dir/machine_info.cc.o.d"
  "/root/repo/src/study/perf_model.cc" "src/study/CMakeFiles/triarch_study.dir/perf_model.cc.o" "gcc" "src/study/CMakeFiles/triarch_study.dir/perf_model.cc.o.d"
  "/root/repo/src/study/report.cc" "src/study/CMakeFiles/triarch_study.dir/report.cc.o" "gcc" "src/study/CMakeFiles/triarch_study.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viram/CMakeFiles/triarch_viram.dir/DependInfo.cmake"
  "/root/repo/build/src/imagine/CMakeFiles/triarch_imagine.dir/DependInfo.cmake"
  "/root/repo/build/src/raw/CMakeFiles/triarch_raw.dir/DependInfo.cmake"
  "/root/repo/build/src/ppc/CMakeFiles/triarch_ppc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/triarch_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/triarch_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/triarch_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
