file(REMOVE_RECURSE
  "CMakeFiles/triarch_study.dir/experiment.cc.o"
  "CMakeFiles/triarch_study.dir/experiment.cc.o.d"
  "CMakeFiles/triarch_study.dir/machine_info.cc.o"
  "CMakeFiles/triarch_study.dir/machine_info.cc.o.d"
  "CMakeFiles/triarch_study.dir/perf_model.cc.o"
  "CMakeFiles/triarch_study.dir/perf_model.cc.o.d"
  "CMakeFiles/triarch_study.dir/report.cc.o"
  "CMakeFiles/triarch_study.dir/report.cc.o.d"
  "libtriarch_study.a"
  "libtriarch_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triarch_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
