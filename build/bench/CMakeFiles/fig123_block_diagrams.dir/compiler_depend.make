# Empty compiler generated dependencies file for fig123_block_diagrams.
# This may be replaced when dependencies are built.
