file(REMOVE_RECURSE
  "CMakeFiles/fig123_block_diagrams.dir/fig123_block_diagrams.cc.o"
  "CMakeFiles/fig123_block_diagrams.dir/fig123_block_diagrams.cc.o.d"
  "fig123_block_diagrams"
  "fig123_block_diagrams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig123_block_diagrams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
