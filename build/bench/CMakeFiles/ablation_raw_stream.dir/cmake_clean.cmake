file(REMOVE_RECURSE
  "CMakeFiles/ablation_raw_stream.dir/ablation_raw_stream.cc.o"
  "CMakeFiles/ablation_raw_stream.dir/ablation_raw_stream.cc.o.d"
  "ablation_raw_stream"
  "ablation_raw_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_raw_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
