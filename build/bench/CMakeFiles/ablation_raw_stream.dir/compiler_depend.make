# Empty compiler generated dependencies file for ablation_raw_stream.
# This may be replaced when dependencies are built.
