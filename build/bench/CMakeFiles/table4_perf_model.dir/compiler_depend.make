# Empty compiler generated dependencies file for table4_perf_model.
# This may be replaced when dependencies are built.
