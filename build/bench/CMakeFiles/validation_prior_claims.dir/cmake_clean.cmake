file(REMOVE_RECURSE
  "CMakeFiles/validation_prior_claims.dir/validation_prior_claims.cc.o"
  "CMakeFiles/validation_prior_claims.dir/validation_prior_claims.cc.o.d"
  "validation_prior_claims"
  "validation_prior_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_prior_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
