# Empty compiler generated dependencies file for validation_prior_claims.
# This may be replaced when dependencies are built.
