file(REMOVE_RECURSE
  "CMakeFiles/table3_kernel_cycles.dir/table3_kernel_cycles.cc.o"
  "CMakeFiles/table3_kernel_cycles.dir/table3_kernel_cycles.cc.o.d"
  "table3_kernel_cycles"
  "table3_kernel_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_kernel_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
