# Empty compiler generated dependencies file for table3_kernel_cycles.
# This may be replaced when dependencies are built.
