# Empty compiler generated dependencies file for ablation_altivec.
# This may be replaced when dependencies are built.
