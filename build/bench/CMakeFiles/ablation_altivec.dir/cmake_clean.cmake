file(REMOVE_RECURSE
  "CMakeFiles/ablation_altivec.dir/ablation_altivec.cc.o"
  "CMakeFiles/ablation_altivec.dir/ablation_altivec.cc.o.d"
  "ablation_altivec"
  "ablation_altivec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_altivec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
