# Empty dependencies file for ablation_imagine_bs.
# This may be replaced when dependencies are built.
