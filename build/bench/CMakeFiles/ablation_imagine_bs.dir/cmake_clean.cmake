file(REMOVE_RECURSE
  "CMakeFiles/ablation_imagine_bs.dir/ablation_imagine_bs.cc.o"
  "CMakeFiles/ablation_imagine_bs.dir/ablation_imagine_bs.cc.o.d"
  "ablation_imagine_bs"
  "ablation_imagine_bs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_imagine_bs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
