file(REMOVE_RECURSE
  "CMakeFiles/table1_peak_throughput.dir/table1_peak_throughput.cc.o"
  "CMakeFiles/table1_peak_throughput.dir/table1_peak_throughput.cc.o.d"
  "table1_peak_throughput"
  "table1_peak_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_peak_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
