file(REMOVE_RECURSE
  "CMakeFiles/ablation_viram_ct.dir/ablation_viram_ct.cc.o"
  "CMakeFiles/ablation_viram_ct.dir/ablation_viram_ct.cc.o.d"
  "ablation_viram_ct"
  "ablation_viram_ct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_viram_ct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
