# Empty dependencies file for ablation_viram_ct.
# This may be replaced when dependencies are built.
