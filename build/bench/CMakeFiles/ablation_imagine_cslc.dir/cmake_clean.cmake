file(REMOVE_RECURSE
  "CMakeFiles/ablation_imagine_cslc.dir/ablation_imagine_cslc.cc.o"
  "CMakeFiles/ablation_imagine_cslc.dir/ablation_imagine_cslc.cc.o.d"
  "ablation_imagine_cslc"
  "ablation_imagine_cslc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_imagine_cslc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
