# Empty dependencies file for ablation_imagine_cslc.
# This may be replaced when dependencies are built.
