file(REMOVE_RECURSE
  "CMakeFiles/ablation_viram_capacity.dir/ablation_viram_capacity.cc.o"
  "CMakeFiles/ablation_viram_capacity.dir/ablation_viram_capacity.cc.o.d"
  "ablation_viram_capacity"
  "ablation_viram_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_viram_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
