# Empty dependencies file for ablation_viram_capacity.
# This may be replaced when dependencies are built.
