# Empty dependencies file for fig8_speedup_cycles.
# This may be replaced when dependencies are built.
