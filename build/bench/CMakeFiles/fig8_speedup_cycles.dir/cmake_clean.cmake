file(REMOVE_RECURSE
  "CMakeFiles/fig8_speedup_cycles.dir/fig8_speedup_cycles.cc.o"
  "CMakeFiles/fig8_speedup_cycles.dir/fig8_speedup_cycles.cc.o.d"
  "fig8_speedup_cycles"
  "fig8_speedup_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_speedup_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
