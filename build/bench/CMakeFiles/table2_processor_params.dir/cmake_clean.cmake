file(REMOVE_RECURSE
  "CMakeFiles/table2_processor_params.dir/table2_processor_params.cc.o"
  "CMakeFiles/table2_processor_params.dir/table2_processor_params.cc.o.d"
  "table2_processor_params"
  "table2_processor_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_processor_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
