# Empty dependencies file for table2_processor_params.
# This may be replaced when dependencies are built.
