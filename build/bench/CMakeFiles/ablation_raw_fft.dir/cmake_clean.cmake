file(REMOVE_RECURSE
  "CMakeFiles/ablation_raw_fft.dir/ablation_raw_fft.cc.o"
  "CMakeFiles/ablation_raw_fft.dir/ablation_raw_fft.cc.o.d"
  "ablation_raw_fft"
  "ablation_raw_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_raw_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
