# Empty compiler generated dependencies file for ablation_raw_fft.
# This may be replaced when dependencies are built.
