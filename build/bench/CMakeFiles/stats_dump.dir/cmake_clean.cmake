file(REMOVE_RECURSE
  "CMakeFiles/stats_dump.dir/stats_dump.cc.o"
  "CMakeFiles/stats_dump.dir/stats_dump.cc.o.d"
  "stats_dump"
  "stats_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
