# Empty compiler generated dependencies file for stats_dump.
# This may be replaced when dependencies are built.
