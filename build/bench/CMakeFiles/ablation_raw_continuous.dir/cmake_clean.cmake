file(REMOVE_RECURSE
  "CMakeFiles/ablation_raw_continuous.dir/ablation_raw_continuous.cc.o"
  "CMakeFiles/ablation_raw_continuous.dir/ablation_raw_continuous.cc.o.d"
  "ablation_raw_continuous"
  "ablation_raw_continuous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_raw_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
