# Empty dependencies file for ablation_raw_continuous.
# This may be replaced when dependencies are built.
