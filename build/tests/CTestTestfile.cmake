# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_viram[1]_include.cmake")
include("/root/repo/build/tests/test_imagine[1]_include.cmake")
include("/root/repo/build/tests/test_raw[1]_include.cmake")
include("/root/repo/build/tests/test_ppc[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edges[1]_include.cmake")
