file(REMOVE_RECURSE
  "CMakeFiles/test_ppc.dir/test_ppc.cc.o"
  "CMakeFiles/test_ppc.dir/test_ppc.cc.o.d"
  "test_ppc"
  "test_ppc.pdb"
  "test_ppc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
