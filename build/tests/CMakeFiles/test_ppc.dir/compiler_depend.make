# Empty compiler generated dependencies file for test_ppc.
# This may be replaced when dependencies are built.
