file(REMOVE_RECURSE
  "CMakeFiles/test_raw.dir/test_raw.cc.o"
  "CMakeFiles/test_raw.dir/test_raw.cc.o.d"
  "test_raw"
  "test_raw.pdb"
  "test_raw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
