file(REMOVE_RECURSE
  "CMakeFiles/test_imagine.dir/test_imagine.cc.o"
  "CMakeFiles/test_imagine.dir/test_imagine.cc.o.d"
  "test_imagine"
  "test_imagine.pdb"
  "test_imagine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imagine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
