# Empty dependencies file for test_imagine.
# This may be replaced when dependencies are built.
