file(REMOVE_RECURSE
  "CMakeFiles/test_viram.dir/test_viram.cc.o"
  "CMakeFiles/test_viram.dir/test_viram.cc.o.d"
  "test_viram"
  "test_viram.pdb"
  "test_viram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_viram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
