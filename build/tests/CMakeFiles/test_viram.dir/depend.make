# Empty dependencies file for test_viram.
# This may be replaced when dependencies are built.
